"""Parser and printer for the Bril-like import source format.

The format (in the spirit of the cs6120 Bril exercise, SNIPPETS.md §2) is
a single function of labeled basic blocks::

    # sum 0..n-1
    @main {
    .entry:
      n: int = const 10;
      i: int = const 0;
      one: int = const 1;
      acc: int = const 0;
      jmp .loop;
    .loop:
      c: bool = lt i n;
      br c .body .done;
    .body:
      acc: int = add acc i;
      i: int = add i one;
      jmp .loop;
    .done:
      print acc;
      ret;
    }

Rules: exactly one function; the body starts with a block label; every
block ends with a terminator (``jmp``/``br``/``ret`` — no fallthrough);
value ops are ``dest: type = op args;`` with types ``int``/``bool``
(``const`` takes an integer literal or ``true``/``false``); effect ops are
``jmp .l;``, ``br cond .then .else;``, ``ret;``, ``print x;``, ``nop;``.
``#`` starts a comment.  Violations raise :class:`SourceError` with the
line number — see docs/INGEST.md.

:func:`print_source` re-emits a :class:`~repro.ingest.model.Function` in
canonical form; ``parse_source(print_source(fn)) == fn`` is a pinned
Hypothesis property.
"""

from __future__ import annotations

import re

from .errors import SourceError
from .model import EFFECT_OPS, TERMINATORS, TYPES, VALUE_OPS, Block, Function, Op

_NAME = r"[A-Za-z_][A-Za-z0-9_]*"
_RE_FUNC = re.compile(rf"^@({_NAME})\s*\{{$")
_RE_LABEL = re.compile(rf"^\.({_NAME}):$")
_RE_VALUE = re.compile(rf"^({_NAME})\s*:\s*({_NAME})\s*=\s*(.+)$")
_RE_VAR = re.compile(rf"^{_NAME}$")
_RE_BLOCKREF = re.compile(rf"^\.{_NAME}$")
_RE_INT = re.compile(r"^-?[0-9]+$")


def _strip(line: str) -> str:
    return line.split("#", 1)[0].strip()


def parse_op(text: str, lineno: int = 0) -> Op:
    """Parse one instruction (no trailing ``;``) into an :class:`Op`.

    Shared by the source parser and the trace reader (whose block
    definitions carry ops in the same per-line syntax).
    """
    m = _RE_VALUE.match(text)
    if m:
        dest, typ, rhs = m.group(1), m.group(2), m.group(3).strip()
        if typ not in TYPES:
            raise SourceError(f"unknown type {typ!r} (expected int or bool)",
                              lineno, text)
        parts = rhs.split()
        op, args = parts[0], parts[1:]
        if op not in VALUE_OPS:
            raise SourceError(f"unknown value op {op!r}", lineno, text)
        if op == "const":
            if len(args) != 1:
                raise SourceError("const takes exactly one literal",
                                  lineno, text)
            lit = args[0]
            if typ == "bool":
                if lit not in ("true", "false"):
                    raise SourceError(
                        f"bool const takes true/false, got {lit!r}",
                        lineno, text)
                value = 1 if lit == "true" else 0
            else:
                if not _RE_INT.match(lit):
                    raise SourceError(f"bad int literal {lit!r}",
                                      lineno, text)
                value = int(lit)
            return Op(op="const", dest=dest, type=typ, value=value,
                      lineno=lineno)
        want = VALUE_OPS[op]
        if len(args) != want:
            raise SourceError(
                f"{op} takes {want} argument(s), got {len(args)}",
                lineno, text)
        for a in args:
            if not _RE_VAR.match(a):
                raise SourceError(f"bad variable name {a!r}", lineno, text)
        return Op(op=op, dest=dest, type=typ, args=tuple(args),
                  lineno=lineno)

    parts = text.split()
    op, rest = parts[0], parts[1:]
    if op not in EFFECT_OPS:
        raise SourceError(f"unknown op {op!r}", lineno, text)
    n_args, n_labels = EFFECT_OPS[op]
    if len(rest) != n_args + n_labels:
        raise SourceError(
            f"{op} takes {n_args} argument(s) and {n_labels} label(s), "
            f"got {len(rest)} operand(s)", lineno, text)
    args, labels = rest[:n_args], rest[n_args:]
    for a in args:
        if not _RE_VAR.match(a):
            raise SourceError(f"bad variable name {a!r}", lineno, text)
    for lab in labels:
        if not _RE_BLOCKREF.match(lab):
            raise SourceError(f"bad block label {lab!r} (expected .name)",
                              lineno, text)
    return Op(op=op, args=tuple(args), labels=tuple(labels), lineno=lineno)


def validate_function(fn: Function) -> None:
    """Structural checks shared by both front ends.

    Every block ends with a terminator, every referenced label exists,
    every used variable is defined somewhere, and the function is
    non-empty.  Raises :class:`SourceError` (located at the offending op)
    on the first violation.
    """
    if not fn.blocks:
        raise SourceError(f"function @{fn.name} has no blocks")
    labels = set()
    for b in fn.blocks:
        if b.label in labels:
            raise SourceError(f"duplicate block label {b.label}")
        labels.add(b.label)
    defined = {op.dest for b in fn.blocks for op in b.ops
               if op.dest is not None}
    for b in fn.blocks:
        if not b.ops or not b.ops[-1].is_terminator:
            raise SourceError(
                f"block {b.label} does not end with a terminator "
                f"({'/'.join(TERMINATORS)})",
                b.ops[-1].lineno if b.ops else None)
        for i, op in enumerate(b.ops):
            if op.is_terminator and i != len(b.ops) - 1:
                raise SourceError(
                    f"terminator {op.op!r} in the middle of block "
                    f"{b.label}", op.lineno)
            for lab in op.labels:
                if lab not in labels:
                    raise SourceError(f"undefined block label {lab}",
                                      op.lineno)
            for a in op.args:
                if a not in defined:
                    raise SourceError(f"use of undefined variable {a!r}",
                                      op.lineno)


def parse_source(text: str) -> Function:
    """Parse the Bril-like source *text* into a validated Function."""
    fn: Function | None = None
    block: Block | None = None
    closed = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        if closed:
            raise SourceError("text after closing '}' "
                              "(exactly one function allowed)", lineno, raw)
        m = _RE_FUNC.match(line)
        if m:
            if fn is not None:
                raise SourceError("nested or second function", lineno, raw)
            fn = Function(name=m.group(1))
            continue
        if fn is None:
            raise SourceError("expected '@name {' to open a function",
                              lineno, raw)
        if line == "}":
            closed = True
            continue
        m = _RE_LABEL.match(line)
        if m:
            block = Block(label=f".{m.group(1)}")
            fn.blocks.append(block)
            continue
        if not line.endswith(";"):
            raise SourceError("instruction must end with ';'", lineno, raw)
        if block is None:
            raise SourceError("function body must start with a block "
                              "label (.name:)", lineno, raw)
        block.ops.append(parse_op(line[:-1].strip(), lineno))
    if fn is None:
        raise SourceError("no function found (expected '@name {')")
    if not closed:
        raise SourceError("missing closing '}'")
    validate_function(fn)
    return fn


# -- printing ---------------------------------------------------------------


def print_op(op: Op) -> str:
    """Canonical text of one instruction (no trailing ``;``)."""
    if op.dest is not None:
        if op.op == "const":
            lit = (("true" if op.value else "false")
                   if op.type == "bool" else str(op.value))
            return f"{op.dest}: {op.type} = const {lit}"
        rhs = " ".join((op.op,) + op.args)
        return f"{op.dest}: {op.type} = {rhs}"
    return " ".join((op.op,) + op.args + op.labels)


def print_source(fn: Function) -> str:
    """Canonical source text of *fn* (inverse of :func:`parse_source`)."""
    lines = [f"@{fn.name} {{"]
    for b in fn.blocks:
        lines.append(f"{b.label}:")
        for op in b.ops:
            lines.append(f"  {print_op(op)};")
    lines.append("}")
    return "\n".join(lines) + "\n"
