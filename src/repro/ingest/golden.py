"""Golden-file plumbing shared by ``repro ingest`` and ``tests/ingest``.

Every conformance fixture ``foo.bril`` (or ``foo.trace.jsonl``) has two
committed goldens next to it:

* ``foo.golden.s`` — the canonical print of the lowered
  :class:`~repro.isa.program.Program`, byte-exact;
* ``foo.stats.json`` — per-scheme ``stats``/``exec_stats`` of the full
  six-scheme evaluation, byte-exact and backend-independent (the test
  asserts reference == fast == committed).

The CLI's ``repro ingest --check`` replays the cheap ``.golden.s`` half
(CI gate); ``--update-goldens`` regenerates both after an intentional
lowering or scheme change.  Keeping the path math and the byte formats
here means the tests and the CLI can never drift apart.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from ..core import serde
from ..isa.printer import format_program
from ..isa.program import Program
from .errors import LowerError
from .lower import SUFFIXES, import_path

#: Default dynamic budget for fixture stats (small imported kernels).
STATS_MAX_STEPS = 200_000


def fixture_stem(path: Union[str, Path]) -> Path:
    """*path* minus its recognised import suffix."""
    p = Path(path)
    for suffix in SUFFIXES:
        if p.name.endswith(suffix):
            return p.with_name(p.name[: -len(suffix)])
    raise LowerError(f"unknown import suffix on {p.name!r}")


def golden_path(path: Union[str, Path]) -> Path:
    return fixture_stem(path).with_suffix(".golden.s")


def stats_path(path: Union[str, Path]) -> Path:
    return fixture_stem(path).with_suffix(".stats.json")


def lowered_text(path: Union[str, Path]) -> str:
    """The byte-exact ``.golden.s`` content for one fixture."""
    prog = import_path(path)
    return f"# {prog.name}\n" + format_program(prog) + "\n"


def stats_text(prog: Program, *, backend: str = "reference",
               max_steps: int = STATS_MAX_STEPS) -> str:
    """The byte-exact ``.stats.json`` content for one lowered program."""
    from ..eval.runner import run_benchmark_impl

    run = run_benchmark_impl(prog.name, prog, max_steps=max_steps,
                             strict=True, backend=backend)
    schemes = {
        scheme: {"stats": r.stats.to_dict(),
                 "exec_stats": r.exec_stats.to_dict()}
        for scheme, r in sorted(run.results.items())
    }
    payload = {"schema_version": serde.SCHEMA_VERSION, "schemes": schemes}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def expand_fixtures(paths: Iterable[Union[str, Path]]) -> list[Path]:
    """Resolve files/directories to fixture files.

    Directories expand to every recognised import file inside them,
    sorted, skipping ``bad_*`` (committed adversarial inputs that must
    *fail* to import).
    """
    out: list[Path] = []
    for item in paths:
        p = Path(item)
        if p.is_dir():
            found = sorted(
                c for c in p.iterdir()
                if any(c.name.endswith(s) for s in SUFFIXES)
                and not c.name.startswith("bad_"))
            out.extend(found)
        else:
            out.append(p)
    return out


def check_fixture(path: Union[str, Path]) -> list[str]:
    """Replay one fixture against its ``.golden.s``; returns problems."""
    gp = golden_path(path)
    if not gp.exists():
        return [f"{gp}: golden missing (run with --update-goldens)"]
    got = lowered_text(path)
    want = gp.read_text()
    if got != want:
        return [f"{gp}: lowered output drifted from golden "
                f"(re-run with --update-goldens if intentional)"]
    return []


def update_fixture(path: Union[str, Path], *, stats: bool = True,
                   max_steps: int = STATS_MAX_STEPS) -> list[Path]:
    """(Re)write the goldens for one fixture; returns the paths written."""
    written = []
    gp = golden_path(path)
    gp.write_text(lowered_text(path))
    written.append(gp)
    if stats:
        sp = stats_path(path)
        sp.write_text(stats_text(import_path(path), max_steps=max_steps))
        written.append(sp)
    return written
