"""Reader for the basic-block trace format (JSONL).

A trace is a line-per-record JSON stream describing a program as the
blocks it *executed*, in the spirit of a BBV/basic-block-trace dump:

* ``{"kind": "meta", "name": "loopy"}`` — optional, names the program
  (first line only; default ``"trace"``).
* ``{"kind": "block", "label": ".loop", "ops": ["c: bool = lt i n",
  "br c .body .done"]}`` — defines a block; the op strings use exactly
  the source-format instruction syntax (shared
  :func:`~repro.ingest.source.parse_op`), last op must be a terminator.
* ``{"kind": "exec", "label": ".loop", "taken": true}`` — one dynamic
  execution of a previously *defined* block.  ``taken`` is required for
  blocks ending in ``br`` (which arm ran) and must be absent/null
  otherwise.

The exec records matter: block layout in the lowered program follows the
observed hot path (greedy most-frequent-successor chaining from the
entry), so a trace where the loop exit is cold lowers with the loop body
on the fallthrough edge.  Malformed lines raise :class:`TraceError`
carrying the 1-based line number.
"""

from __future__ import annotations

import json

from .errors import SourceError, TraceError
from .model import Block, Function
from .source import parse_op, validate_function


def _require(cond: bool, msg: str, lineno: int, line: str) -> None:
    if not cond:
        raise TraceError(msg, lineno, line)


def parse_trace(text: str) -> Function:
    """Parse a JSONL basic-block trace into a hot-path-ordered Function."""
    name = "trace"
    blocks: dict[str, Block] = {}
    order: list[str] = []
    exec_counts: dict[str, int] = {}
    succ_counts: dict[tuple[str, str], int] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"not valid JSON: {exc.msg}",
                             lineno, raw) from None
        _require(isinstance(rec, dict), "record must be a JSON object",
                 lineno, raw)
        kind = rec.get("kind")
        if kind == "meta":
            _require(not blocks and not exec_counts,
                     "meta record must come first", lineno, raw)
            got = rec.get("name", name)
            _require(isinstance(got, str) and got.isidentifier(),
                     f"bad program name {got!r}", lineno, raw)
            name = got
        elif kind == "block":
            label = rec.get("label")
            _require(isinstance(label, str) and label.startswith("."),
                     f"bad block label {label!r} (expected .name)",
                     lineno, raw)
            _require(label not in blocks,
                     f"duplicate definition of block {label}", lineno, raw)
            ops = rec.get("ops")
            _require(isinstance(ops, list) and ops
                     and all(isinstance(o, str) for o in ops),
                     "block needs a non-empty list of op strings",
                     lineno, raw)
            try:
                parsed = [parse_op(o, lineno) for o in ops]
            except SourceError as exc:
                raise TraceError(f"bad op in block {label}: {exc.message}",
                                 lineno, raw) from None
            _require(parsed[-1].is_terminator,
                     f"block {label} does not end with a terminator",
                     lineno, raw)
            blocks[label] = Block(label=label, ops=parsed)
            order.append(label)
        elif kind == "exec":
            label = rec.get("label")
            _require(label in blocks,
                     f"exec of undefined block {label!r}", lineno, raw)
            term = blocks[label].ops[-1]
            taken = rec.get("taken")
            if term.op == "br":
                _require(isinstance(taken, bool),
                         f"exec of {label} (ends in br) needs "
                         f"\"taken\": true|false", lineno, raw)
                succ = term.labels[0] if taken else term.labels[1]
            else:
                _require(taken is None,
                         f"exec of {label} (ends in {term.op}) must not "
                         f"carry \"taken\"", lineno, raw)
                succ = term.labels[0] if term.op == "jmp" else None
            exec_counts[label] = exec_counts.get(label, 0) + 1
            if succ is not None:
                succ_counts[(label, succ)] = \
                    succ_counts.get((label, succ), 0) + 1
        else:
            raise TraceError(f"unknown record kind {kind!r} "
                             f"(expected meta/block/exec)", lineno, raw)

    if not blocks:
        raise TraceError("trace defines no blocks")
    fn = Function(name=name,
                  blocks=[blocks[lab] for lab in _layout(order, succ_counts)])
    try:
        validate_function(fn)
    except SourceError as exc:
        raise TraceError(exc.message, exc.lineno, exc.line) from None
    return fn


def _layout(order: list[str], succ_counts: dict[tuple[str, str], int]) \
        -> list[str]:
    """Greedy hot-path layout: chain most-frequent successors.

    The entry (first-defined block) stays first; from each placed block
    the most-executed not-yet-placed successor follows it, so the hot
    path becomes the fallthrough path.  Blocks the trace never reached
    are appended in definition order.
    """
    placed: dict[str, None] = {}
    cursor = order[0]
    placed[cursor] = None
    while True:
        succs = [(count, dst) for (src, dst), count in succ_counts.items()
                 if src == cursor and dst not in placed]
        if not succs:
            rest = [lab for lab in order if lab not in placed]
            if not rest:
                break
            cursor = rest[0]
        else:
            # Highest count wins; ties break toward definition order.
            best = max(count for count, _ in succs)
            cursor = min((dst for count, dst in succs if count == best),
                         key=order.index)
        placed[cursor] = None
    return list(placed)
