"""Workload ingestion: import third-party programs as first-class
workloads.

Two front ends — a Bril-like source format (:mod:`repro.ingest.source`)
and a JSONL basic-block trace format (:mod:`repro.ingest.trace`) — parse
into one tiny block IR (:mod:`repro.ingest.model`), which
:mod:`repro.ingest.lower` register-allocates and lowers onto the ISA,
verified by the :mod:`repro.robust` verifier.  Imported programs join
the evaluation through :func:`repro.workloads.imported.load_imported`
and are cache-isolated by a content hash embedded in the program name.

Golden-file conformance lives in :mod:`repro.ingest.golden` (shared by
``repro ingest --check`` and ``tests/ingest``); every failure mode is a
structured :class:`IngestError` subclass (:mod:`repro.ingest.errors`).
"""

from .errors import (IngestError, LowerError, RegisterPressureError,
                     SourceError, TraceError)
from .model import Block, Function, Op
from .source import parse_source, print_source
from .trace import parse_trace
from .lower import (ALLOCATABLE, allocate_registers, import_path,
                    import_source, import_trace, lower_function)
from .golden import (check_fixture, expand_fixtures, golden_path,
                     lowered_text, stats_path, stats_text, update_fixture)

__all__ = [
    "IngestError", "SourceError", "TraceError", "LowerError",
    "RegisterPressureError",
    "Op", "Block", "Function",
    "parse_source", "print_source", "parse_trace",
    "ALLOCATABLE", "allocate_registers", "lower_function",
    "import_source", "import_trace", "import_path",
    "check_fixture", "expand_fixtures", "golden_path", "lowered_text",
    "stats_path", "stats_text", "update_fixture",
]
