"""Trace aggregation: the table behind ``repro trace summarize``.

A JSONL trace (see :mod:`repro.obs.trace`) is a flat list of completed
spans; :func:`aggregate_spans` folds them into per-name timing rows and
:func:`summarize_trace` renders the per-pass / per-cell table::

    span                          count   total ms    mean ms     max ms
    cell.Proposed                     4    1234.56     308.64     400.12
    pass.speculate                    4     321.09      80.27      99.44
    ...

Rows are sorted by total time descending — the profile-reading order.
"""

from __future__ import annotations

from typing import Sequence


def aggregate_spans(records: Sequence[dict]) -> dict[str, dict]:
    """Per-name aggregate of span records: count/total/mean/max (ns)."""
    agg: dict[str, dict] = {}
    for rec in records:
        row = agg.get(rec["name"])
        dur = rec["dur_ns"]
        if row is None:
            agg[rec["name"]] = {"count": 1, "total_ns": dur,
                                "max_ns": dur, "errors": 0}
        else:
            row["count"] += 1
            row["total_ns"] += dur
            if dur > row["max_ns"]:
                row["max_ns"] = dur
        if rec.get("attrs", {}).get("error"):
            agg[rec["name"]]["errors"] += 1
    for row in agg.values():
        row["mean_ns"] = row["total_ns"] / row["count"]
    return agg


def summarize_trace(records: Sequence[dict]) -> str:
    """Render span records as a per-name timing table (see module doc)."""
    agg = aggregate_spans(records)
    lines = [f"{len(records)} spans, {len(agg)} distinct names",
             f"{'span':<30} {'count':>6} {'total ms':>11} "
             f"{'mean ms':>10} {'max ms':>10}"]
    for name in sorted(agg, key=lambda n: -agg[n]["total_ns"]):
        row = agg[name]
        err = f"  ({row['errors']} errored)" if row["errors"] else ""
        lines.append(
            f"{name:<30} {row['count']:>6} "
            f"{row['total_ns'] / 1e6:>11.3f} "
            f"{row['mean_ns'] / 1e6:>10.3f} "
            f"{row['max_ns'] / 1e6:>10.3f}{err}")
    return "\n".join(lines)
