"""Cycle-simulator observer: rates, intervals, entropy, hot-PC sampling.

:class:`PipelineObserver` derives the per-cycle dynamics the paper's
analysis rests on — fetch/issue/retire rates, distances between
mispredictions, per-branch outcome entropy — from a
:class:`~repro.sim.pipeline.TimingSim` run *without touching the
simulator's hot loop*.  It attaches by rebinding the sim's ``_issue``
and ``_dispatch`` bound methods as instance attributes (shadowing the
class methods for that one instance) and wrapping the trace iterator;
an unobserved ``TimingSim`` executes byte-identical code to one built
before this module existed, which is what lets ``BENCH_obs.json``
honestly report a near-zero disabled overhead.

All derived figures come from deltas of counters the simulator already
maintains:

* **retires/cycle** — delta of ``committed + annulled`` at the start of
  each ``_issue`` call (the commit stage runs immediately before it);
* **issues/cycle** — delta of ``sum(unit_issues)`` across ``_issue``;
* **fetch/cycle** — active-list growth across ``_dispatch`` (clamped at
  zero: a wrong-path squash inside dispatch may shrink it);
* **mispredict intervals** — cycle distance between increments of
  ``mispredict_events``;
* **branch entropy** — per-PC taken/total counts from the trace, folded
  into binary entropy at :meth:`finalize`.

The opt-in **sampling hook** records every *N*-th dynamic trace entry's
static instruction index; :func:`heat_report` buckets the resulting
histogram by the program's :func:`~repro.cfg.graph.build_cfg` basic
blocks.
"""

from __future__ import annotations

from math import log2
from typing import Iterable, Iterator, Optional

from .metrics import REGISTRY, MetricsRegistry

#: Bucket bounds for per-cycle rate histograms (dispatch width is 4).
RATE_BOUNDS = (0, 1, 2, 3, 4, 8)
#: Bucket bounds for mispredict-interval histograms (cycles).
INTERVAL_BOUNDS = (4, 8, 16, 32, 64, 128, 256, 1024)
#: Bucket bounds for the branch-entropy histogram (bits; max is 1.0).
ENTROPY_BOUNDS = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def outcome_entropy(taken: int, total: int) -> float:
    """Binary entropy (bits) of a branch's outcome distribution.

    0.0 for a perfectly biased branch, 1.0 for a 50/50 one — the
    information-theoretic ceiling on what any history predictor can
    learn from the outcome stream alone.
    """
    if total <= 0 or taken <= 0 or taken >= total:
        return 0.0
    p = taken / total
    q = 1.0 - p
    return -(p * log2(p) + q * log2(q))


class PipelineObserver:
    """Derives pipeline dynamics from one :class:`TimingSim` run.

    Pass as ``TimingSim(..., observer=PipelineObserver())`` or let
    :func:`maybe_observer` supply one when metrics are enabled.  One
    observer observes one run; create a fresh one per simulation.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 sample_interval: int = 0):
        self.registry = registry if registry is not None else REGISTRY
        self.sample_interval = sample_interval
        #: static instruction index -> number of samples landing on it
        self.pc_samples: dict[int, int] = {}
        #: static branch index -> [taken, total] outcome counts
        self.branch_outcomes: dict[int, list[int]] = {}
        #: per-branch entropy, filled by :meth:`finalize`
        self.branch_entropy: dict[int, float] = {}
        self.trace_entries = 0
        self._retired = 0
        self._issued = 0
        self._mispredicts = 0
        self._last_mispredict_cycle: Optional[int] = None

    # -- attachment --------------------------------------------------------

    def attach(self, sim, trace: Iterable) -> Iterator:
        """Instrument *sim* for one run; returns the wrapped trace.

        Called by :meth:`TimingSim.run`.  Rebinds ``_issue`` and
        ``_dispatch`` on the instance; the class methods themselves are
        never modified.
        """
        stats = sim.stats
        reg = self.registry
        orig_issue = sim._issue
        orig_dispatch = sim._dispatch

        def _observed_issue(cycle: int) -> None:
            retired = stats.committed + stats.annulled
            reg.observe("pipeline.retire_per_cycle",
                        retired - self._retired, RATE_BOUNDS)
            self._retired = retired
            orig_issue(cycle)
            issued = sum(stats.unit_issues.values())
            reg.observe("pipeline.issue_per_cycle",
                        issued - self._issued, RATE_BOUNDS)
            self._issued = issued

        def _observed_dispatch(cycle, pending, it):
            rob_before = len(sim._rob)
            out = orig_dispatch(cycle, pending, it)
            reg.observe("pipeline.fetch_per_cycle",
                        max(0, len(sim._rob) - rob_before), RATE_BOUNDS)
            mis = stats.mispredict_events
            if mis > self._mispredicts:
                if self._last_mispredict_cycle is not None:
                    reg.observe("pipeline.mispredict_interval",
                                cycle - self._last_mispredict_cycle,
                                INTERVAL_BOUNDS)
                self._last_mispredict_cycle = cycle
                self._mispredicts = mis
            return out

        sim._issue = _observed_issue
        sim._dispatch = _observed_dispatch
        return self._wrap_trace(trace)

    def _wrap_trace(self, trace: Iterable) -> Iterator:
        """Observe trace entries: branch outcomes + hot-PC sampling."""
        interval = self.sample_interval
        samples = self.pc_samples
        outcomes = self.branch_outcomes
        seen = 0
        for entry in trace:
            seen += 1
            if interval and seen % interval == 0:
                samples[entry.index] = samples.get(entry.index, 0) + 1
            if entry.taken is not None and not entry.annulled \
                    and entry.ins.is_branch:
                rec = outcomes.get(entry.index)
                if rec is None:
                    rec = outcomes[entry.index] = [0, 0]
                rec[0] += bool(entry.taken)
                rec[1] += 1
            yield entry
        self.trace_entries = seen

    # -- finalization ------------------------------------------------------

    def finalize(self, stats) -> None:
        """Fold run totals and per-branch entropy into the registry."""
        reg = self.registry
        reg.inc("pipeline.cycles", stats.cycles)
        reg.inc("pipeline.committed", stats.committed)
        reg.inc("pipeline.annulled", stats.annulled)
        reg.inc("pipeline.mispredicts", stats.mispredict_events)
        reg.inc("pipeline.traced_entries", self.trace_entries)
        for index, (taken, total) in sorted(self.branch_outcomes.items()):
            h = outcome_entropy(taken, total)
            self.branch_entropy[index] = h
            reg.observe("pipeline.branch_entropy", h, ENTROPY_BOUNDS)


def maybe_observer(sample_interval: int = 0) -> Optional[PipelineObserver]:
    """An observer when metrics are enabled (or sampling asked), else None.

    The one-line opt-in gate used by every simulation call site: with the
    registry disabled and no sampling requested, the simulator runs with
    ``observer=None`` — the pre-observability code path, exactly.
    """
    if REGISTRY.enabled or sample_interval:
        return PipelineObserver(sample_interval=sample_interval)
    return None


def heat_report(samples: dict[int, int], prog) -> str:
    """Render a hot-PC sample histogram as a per-basic-block heat table.

    *samples* maps static instruction indices (as collected by
    :class:`PipelineObserver` with ``sample_interval > 0``) to sample
    counts; blocks come from :func:`repro.cfg.graph.build_cfg` of the
    simulated program, whose blocks partition the instruction indices in
    layout order.  Blocks with no samples are omitted.
    """
    from ..cfg.graph import build_cfg

    cfg = build_cfg(prog)
    total = sum(samples.values())
    rows: list[tuple[int, str, int, int]] = []   # (count, label, lo, hi)
    start = 0
    for bb in cfg.blocks:
        end = start + len(bb.instructions)
        count = sum(n for idx, n in samples.items() if start <= idx < end)
        if count:
            rows.append((count, bb.label or f"bb{bb.bid}", start, end - 1))
        start = end
    rows.sort(key=lambda r: (-r[0], r[2]))
    lines = [f"heat report: {prog.name} "
             f"({total} samples, {len(rows)} hot blocks)"]
    if not rows:
        lines.append("  (no samples)")
        return "\n".join(lines)
    peak = rows[0][0]
    for count, label, lo, hi in rows:
        pct = 100.0 * count / total
        bar = "#" * max(1, round(24 * count / peak))
        lines.append(f"  {label:<16} [{lo:>4}..{hi:>4}] "
                     f"{count:>7} {pct:6.2f}% {bar}")
    return "\n".join(lines)
