"""Named counters and histograms with a disabled no-op fast path.

The registry is process-global and **disabled by default**: every
recording call (:meth:`MetricsRegistry.inc`,
:meth:`MetricsRegistry.observe`) starts with one boolean check and
returns immediately when metrics are off, so instrumented code paths pay
effectively nothing in normal runs — ``tools/bench_suite.py`` measures
the residual overhead on the cycle simulator into ``BENCH_obs.json``.

Naming convention (see docs/OBSERVABILITY.md): dot-separated
``<layer>.<event>`` — e.g. ``engine.cache.hits``,
``compiler.ops_speculated``, ``pipeline.retire_per_cycle``.  Counters
count events; histograms record distributions against explicit bucket
upper bounds (the last bucket is the overflow ``+inf`` bucket).

Like the tracer, the registry is per-process: worker processes of
:mod:`repro.engine.pool` accumulate into their own (disabled) registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

#: Default histogram bucket upper bounds (small-count distributions such
#: as per-cycle rates).  The implicit final bucket catches everything
#: above the last bound.
DEFAULT_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64)


@dataclass
class Counter:
    """A monotonically increasing named count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (default 1)."""
        self.value += n


@dataclass
class Histogram:
    """Bucketed distribution against explicit upper bounds.

    ``counts[i]`` counts observations ``<= bounds[i]``; ``counts[-1]``
    is the overflow bucket.  ``total``/``count`` give the exact mean, so
    coarse buckets never lose the first moment.
    """

    name: str
    bounds: tuple = DEFAULT_BOUNDS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of this histogram."""
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "total": self.total,
                "mean": self.mean}


class MetricsRegistry:
    """Process-global named metrics with an enable/disable gate.

    Metric objects are created lazily on first recording *while
    enabled*; :meth:`counter`/:meth:`histogram` create eagerly (useful
    in tests).  Disabling does not clear values — :meth:`reset` does.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- gate --------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when recording calls take effect."""
        return self._enabled

    def enable(self) -> None:
        """Turn recording on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn recording off (values are kept; see :meth:`reset`)."""
        self._enabled = False

    # -- access ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created if absent."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        """The named histogram, created with *bounds* if absent."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, tuple(bounds))
        return h

    # -- recording (no-op fast path) ---------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Increment a counter; does nothing when disabled."""
        if not self._enabled:
            return
        self.counter(name).inc(n)

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        """Record into a histogram; does nothing when disabled."""
        if not self._enabled:
            return
        self.histogram(name, bounds if bounds is not None
                       else DEFAULT_BOUNDS).observe(value)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state: ``{"counters": .., "histograms": ..}``."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Drop every metric (the gate state is unchanged)."""
        self._counters.clear()
        self._histograms.clear()


#: The process-global registry all instrumented code records into.
REGISTRY = MetricsRegistry()


def metrics_enable() -> None:
    """Enable recording on the global registry."""
    REGISTRY.enable()


def metrics_disable() -> None:
    """Disable recording on the global registry."""
    REGISTRY.disable()


def metrics_enabled() -> bool:
    """Whether the global registry is recording."""
    return REGISTRY.enabled


def metrics_snapshot() -> dict:
    """Snapshot of the global registry."""
    return REGISTRY.snapshot()


def metrics_reset() -> None:
    """Clear the global registry's metrics."""
    REGISTRY.reset()
