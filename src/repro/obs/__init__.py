"""Observability layer: tracing spans, metrics, and profiling hooks.

The paper's claims are about *where cycles go*; this package makes every
layer of the reproduction account for its time and events without
perturbing the measurements it observes:

* :mod:`~repro.obs.trace` — context-manager **spans** with monotonic
  timing and structured attributes, emitted as JSONL.  A process-global
  tracer is installed with :func:`tracing`/:func:`install`; when none is
  installed, :func:`span` returns a shared no-op span, so instrumented
  code pays one global load and an attribute check per span;
* :mod:`~repro.obs.metrics` — named **counters and histograms** in a
  process-global registry with a disabled-by-default no-op fast path
  (``tools/bench_suite.py`` measures the overhead into ``BENCH_obs.json``);
* :mod:`~repro.obs.pipeline_obs` — an opt-in **observer** for the cycle
  simulator deriving fetch/issue/retire rates, mispredict intervals,
  per-branch outcome entropy, and sampled hot-PC histograms from the
  existing counters, attached by method rebinding so the simulator's hot
  loop is untouched when observation is off;
* :mod:`~repro.obs.summarize` — aggregation of a JSONL trace into the
  per-pass / per-cell timing table behind ``repro trace summarize``.

Span and metric naming conventions are documented in
docs/OBSERVABILITY.md.
"""

from .metrics import (
    Counter, Histogram, MetricsRegistry, REGISTRY, metrics_disable,
    metrics_enable, metrics_enabled, metrics_reset, metrics_snapshot,
)
from .pipeline_obs import PipelineObserver, heat_report, maybe_observer
from .summarize import summarize_trace
from .trace import (
    NULL_SPAN, Span, Tracer, active_tracer, install, read_trace, span,
    tracing, uninstall,
)

__all__ = [
    "Counter", "Histogram", "MetricsRegistry", "REGISTRY",
    "metrics_disable", "metrics_enable", "metrics_enabled",
    "metrics_reset", "metrics_snapshot",
    "PipelineObserver", "heat_report", "maybe_observer",
    "summarize_trace",
    "NULL_SPAN", "Span", "Tracer", "active_tracer", "install",
    "read_trace", "span", "tracing", "uninstall",
]
