"""Tracing spans: monotonic timing + structured attributes, emitted as JSONL.

One span is one timed region of work (a compiler pass, a scheme cell, a
fuzz-campaign stage).  Spans nest: the tracer keeps a stack, so every
record carries its parent span id and depth, and a trace can be folded
back into a tree.  Records are written as one JSON object per line in
completion order (children before parents, since a span is emitted when
it *closes*)::

    {"name": "pass.speculate", "span_id": 7, "parent_id": 3, "depth": 2,
     "start_ns": 81234, "dur_ns": 55102, "attrs": {"stage": "speculate"}}

Timing uses :func:`time.perf_counter_ns` (monotonic, unaffected by wall
clock adjustments); ``start_ns`` is relative to tracer creation, so two
traces are comparable only within themselves.

The instrumentation contract is the module-level :func:`span`: when no
tracer is installed (the default), it returns the shared
:data:`NULL_SPAN` whose ``__enter__``/``__exit__``/``set`` do nothing —
disabled tracing costs one global load and a comparison per span, and
the simulator's per-cycle hot loop contains no spans at all (see
:mod:`repro.obs.pipeline_obs`).

Worker processes of :mod:`repro.engine.pool` do not inherit the parent's
tracer (it is process-global state holding an open file); traced runs
that must capture every cell span should run with ``jobs=1``.
"""

from __future__ import annotations

import io
import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, TextIO, Union

#: Version stamped into every span record (``"v"``); readers reject
#: records from a different major schema.
TRACE_SCHEMA_VERSION = 1


class Span:
    """One open traced region; a context manager that emits on close.

    Attributes passed at creation or added via :meth:`set` travel in the
    record's ``attrs`` object.  An exception propagating through the span
    is recorded as ``attrs["error"]`` (exception type name) — the span is
    still emitted, and the exception still propagates.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "depth",
                 "attrs", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], depth: int, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self._start_ns = 0

    def set(self, key: str, value: Any) -> None:
        """Attach one structured attribute to this span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:            # mis-nested exit: drop down to us
            del stack[stack.index(self):]
        self._tracer._emit(self, end_ns)
        return False


class _NullSpan:
    """Shared do-nothing span returned when no tracer is installed."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        """No-op."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span; identity-comparable in tests.
NULL_SPAN = _NullSpan()


class Tracer:
    """Writes nested spans as JSONL to a sink (path or text stream).

    A path sink is opened (and closed by :meth:`close`) by the tracer; a
    stream sink is borrowed and left open.  Span ids are unique and
    ascending within one tracer.
    """

    def __init__(self, sink: Union[str, Path, TextIO]):
        if isinstance(sink, (str, Path)):
            self._fh: TextIO = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        else:
            self._fh = sink
            self._owns_sink = False
        self._origin_ns = time.perf_counter_ns()
        self._next_id = 1
        self._stack: list[Span] = []
        self.emitted = 0

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a new span nested under the currently active one."""
        parent = self._stack[-1] if self._stack else None
        sid = self._next_id
        self._next_id += 1
        return Span(self, name, sid,
                    parent.span_id if parent is not None else None,
                    parent.depth + 1 if parent is not None else 0,
                    dict(attrs))

    def _emit(self, s: Span, end_ns: int) -> None:
        record = {
            "v": TRACE_SCHEMA_VERSION,
            "name": s.name,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "depth": s.depth,
            "start_ns": s._start_ns - self._origin_ns,
            "dur_ns": end_ns - s._start_ns,
            "attrs": s.attrs,
        }
        try:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        except ValueError:             # sink already closed; drop the span
            return
        self.emitted += 1

    def close(self) -> None:
        """Flush, and close the sink if this tracer opened it."""
        try:
            self._fh.flush()
        except ValueError:
            pass
        if self._owns_sink:
            self._fh.close()


_ACTIVE: Optional[Tracer] = None


def install(tracer: Tracer) -> None:
    """Make *tracer* the process-global tracer :func:`span` emits to."""
    global _ACTIVE
    _ACTIVE = tracer


def uninstall() -> None:
    """Remove the process-global tracer; :func:`span` becomes a no-op."""
    global _ACTIVE
    _ACTIVE = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or None."""
    return _ACTIVE


def span(name: str, **attrs: Any):
    """Open a span on the installed tracer; :data:`NULL_SPAN` when none.

    The instrumentation entry point used throughout the codebase::

        with obs_span("pass.speculate", stage=stage) as sp:
            ...
            sp.set("moved", report.speculated)
    """
    t = _ACTIVE
    if t is None:
        return NULL_SPAN
    return t.span(name, **attrs)


@contextmanager
def tracing(sink: Union[str, Path, TextIO]) -> Iterator[Tracer]:
    """Install a tracer writing to *sink* for the duration of the block."""
    tracer = Tracer(sink)
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall()
        tracer.close()


def read_trace(source: Union[str, Path, TextIO]) -> list[dict]:
    """Parse a JSONL trace back into span records (schema-checked).

    Raises ``ValueError`` on a malformed line or a record from an
    incompatible schema version, with the 1-based line number.
    """
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    records: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: not JSON ({exc})")
        if not isinstance(rec, dict) or "name" not in rec \
                or "dur_ns" not in rec:
            raise ValueError(f"trace line {lineno}: not a span record")
        if rec.get("v") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace line {lineno}: schema version {rec.get('v')!r}, "
                f"expected {TRACE_SCHEMA_VERSION}")
        records.append(rec)
    return records
