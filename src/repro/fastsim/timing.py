"""FastTimingSim: batched-event restructuring of the cycle model.

Cycle-for-cycle equivalent to :class:`repro.sim.pipeline.TimingSim`
(default configuration: ``model_wrong_path=False``, no observer), fed by
the batch stream of :meth:`FastFunctionalSim.batches` instead of one
``TraceEntry`` object per dynamic instruction.

What makes it fast while staying exact:

* **Dense entries.**  In-flight instructions are 12-slot lists (complete,
  pc, annulled, addr, unit-id, rename-class, pending-dep count, ready-at
  cycle, waiter list, def-id, age, queue-id) built from the decode-once
  tables — no ``Instruction`` inspection, no string keys, in the
  per-cycle loop.
* **Event-bucket issue.**  The reference re-scans every queued entry
  each cycle (``_Entry.ready``).  Here an entry is filed, exactly once,
  under the cycle it becomes issuable: at dispatch if its producers are
  done, else the moment its last producer issues (which fixes the max
  completion cycle).  Each cycle pops its bucket, orders candidates by
  age — per-queue age order is what the reference scan sees, and every
  functional unit is fed by exactly one queue, so global age order
  decides identically — and applies unit caps; cap-blocked entries carry
  over and retry like a re-scan would.  No entry is visited while it
  waits on a dependence.
* **Span skipping.**  Whenever fetch is gated (mispredict recovery,
  fence drain, icache refill) or the trace is exhausted, nothing happens
  between events: the loop jumps straight to the next one — gate
  reopening, bucket cycle, or head-of-ROB completion — bulk-adding the
  per-cycle stall and queue-full counters for the skipped span.
  Mispredict-heavy schemes spend most of their cycles in these gaps.

The branch predictor and the I/D cache models are the *real* objects
from ``repro.sim`` — their stats land in ``SimStats`` byte-identical by
construction.  (Within one cycle every data-cache access comes from the
load/store queue, so age ordering preserves the reference's access
order and therefore LRU state.)  Wrong-path modeling and observer hooks
are not supported here; :func:`repro.fastsim.backend.simulate` falls
back to the reference for those runs.
"""

from __future__ import annotations

from collections import deque
from operator import itemgetter
from typing import Iterable, Optional

from ..sim.branch_pred import make_predictor
from ..sim.cache import Cache
from ..sim.config import MachineConfig, R10K
from ..sim.functional import UnmodeledOpcode
from ..sim.stats import SimStats
from .decode import QUEUE_NAMES, UNIT_NAMES, DecodedProgram

# _Entry slots (plain lists; attribute access is too slow here):
# [0] complete cycle (None until issued)     [6] pending producer count
# [1] pc                                     [7] ready-at cycle
# [2] annulled                               [8] waiter list (lazy)
# [3] dcache address (-1 none)               [9] def reg id (-1 none)
# [4] unit id 0..6                           [10] age (dispatch order)
# [5] rename class 0/1/2                     [11] queue id 0..3

_AGE = itemgetter(10)

#: Sentinel "no bound" cycle for the span-skip jump target.
_NEVER = 1 << 62


class FastTimingSim:
    """Cycle-accurate replay of a batched trace over decoded tables."""

    def __init__(self, config: MachineConfig = R10K,
                 decoded: Optional[DecodedProgram] = None):
        self.cfg = config
        self.decoded = decoded
        self.stats = SimStats()
        self.predictor = make_predictor(
            config.predictor, config.bht_entries, config.btb_entries)
        self.stats.predictor = self.predictor.stats
        self.icache = Cache(config.icache_size, config.cache_line,
                            config.cache_assoc, "icache")
        self.dcache = Cache(config.dcache_size, config.cache_line,
                            config.cache_assoc, "dcache")
        self.stats.icache = self.icache.stats
        self.stats.dcache = self.dcache.stats
        for q in QUEUE_NAMES:
            self.stats.queue_full_cycles[q] = 0
        for u in UNIT_NAMES:
            self.stats.unit_full_cycles[u] = 0
            self.stats.unit_issues[u] = 0

    def run(self, batches: Iterable[tuple],
            decoded: Optional[DecodedProgram] = None) -> SimStats:
        """Replay *batches* ((idxs, brs, mems, anns) tuples) to completion."""
        dec = decoded if decoded is not None else self.decoded
        if dec is None:
            raise ValueError("FastTimingSim needs a DecodedProgram")
        cfg = self.cfg
        lats, dmeta = dec.timing_meta(cfg)
        ops = dec.ops
        instrs = dec.prog.instructions

        CW = cfg.commit_width
        DW = cfg.dispatch_width
        ROB_SIZE = cfg.rob_size
        QCAP = (cfg.int_queue_size, cfg.addr_queue_size,
                cfg.fp_queue_size, cfg.branch_buffer_size)
        UCAP = (cfg.num_alus, cfg.num_shifters, cfg.num_mem_units,
                cfg.num_branch_units, cfg.num_fpadd, cfg.num_fpmul,
                cfg.num_fpdiv)
        RECOV = cfg.misprediction_recovery
        FSTALL = cfg.fence_stall
        MISS = cfg.latencies.cache_miss_penalty

        # The LRU cache lookups are inlined (a method call per access is
        # a measurable share of the loop); hit/miss totals are written
        # back to the real Cache objects' stats at the end.  Set state
        # mirrors cache.Cache.access exactly: hit -> move-to-back,
        # miss -> append + evict front past the associativity.
        line_shift = cfg.cache_line.bit_length() - 1
        isets = self.icache._sets
        dsets = self.dcache._sets
        iset_mask = len(isets) - 1
        dset_mask = len(dsets) - 1
        itag_shift = iset_mask.bit_length()
        dtag_shift = dset_mask.bit_length()
        ASSOC = cfg.cache_assoc
        i_acc = i_miss = d_acc = d_miss = 0
        predictor = self.predictor
        pred_access = predictor.access
        pstats = predictor.stats

        rob: deque = deque()
        rob_append = rob.append
        rob_popleft = rob.popleft
        #: issue events: cycle -> entries whose deps are resolved by then
        bucket: dict = {}
        bucket_get = bucket.get
        bucket_pop = bucket.pop
        #: cap/fpdiv-blocked candidates retrying next cycle (age order)
        carry: list = []
        qlen = [0, 0, 0, 0]
        producer: list = [None] * 72
        free_int = cfg.phys_int_regs - cfg.arch_int_regs
        free_fp = cfg.phys_fp_regs - cfg.arch_fp_regs
        fpdiv_busy = 0
        redirect = None
        fence = None
        fetch_resume = 0
        cur_line = -1
        cycle = 0

        committed = 0
        annulled_n = 0
        fetch_stall = 0
        icache_stall = 0
        mispredicts = 0
        indirect = 0
        fence_stall_c = 0
        fence_ev = 0
        qfull = [0, 0, 0, 0]
        ufull = [0] * 7
        uissues = [0] * 7

        gen = iter(batches)
        idxs: tuple = ()
        brs: tuple = ()
        mems: tuple = ()
        anns: tuple = ()
        nidx = 0
        di = bi = mi = ai = 0
        next_ann = -1
        step_no = 0
        exhausted = False

        def refill():
            # Mirrors the reference's eager ``pending = next(it, None)``:
            # functional-side exceptions surface here and propagate.
            nonlocal idxs, brs, mems, anns, nidx, di, bi, mi, ai, \
                next_ann, exhausted
            while True:
                try:
                    b = next(gen)
                except StopIteration:
                    exhausted = True
                    return False
                if b[0]:
                    idxs, brs, mems, anns = b
                    nidx = len(idxs)
                    di = bi = mi = ai = 0
                    next_ann = anns[0] if anns else -1
                    return True

        refill()

        while not exhausted or rob:
            # -- span skip ------------------------------------------------------
            if (exhausted or redirect is not None or fence is not None
                    or cycle < fetch_resume) and not carry:
                # Fetch is inactive: until the gate reopens or an issue
                # bucket comes due, each cycle is just a commit wave
                # plus fixed stall counters.  Commits can be retired
                # through the whole span at reference pacing (≤ CW per
                # cycle, head order) — they wake nobody and dispatch is
                # gated, so freed rename registers go unobserved.
                # Attribute the skipped cycles to whichever gate the
                # reference's elif chain would have blamed.  (Gate state
                # cannot change mid-span: redirect/fence are set at
                # dispatch, and their completion times are fixed at
                # issue — an unissued gate entry sits in a bucket, which
                # bounds the jump.)
                if redirect is not None:
                    c0 = redirect[0]
                    t = c0 + RECOV if c0 is not None else _NEVER
                    mode = 1
                elif fence is not None:
                    c0 = fence[0]
                    t = c0 + FSTALL if c0 is not None else _NEVER
                    mode = 2
                elif cycle < fetch_resume:
                    t = fetch_resume
                    mode = 3
                else:
                    t = _NEVER          # pure drain: bound by events only
                    mode = 0
                if bucket:
                    mb = min(bucket)
                    if mb < t:
                        t = mb
                if t > cycle:
                    cur = cycle
                    while rob and cur < t:
                        c0 = rob[0][0]
                        if c0 is None:      # unissued head: no commits
                            break
                        if c0 > cur:
                            if c0 >= t:
                                break
                            cur = c0
                        k = 0
                        while rob and k < CW:
                            e = rob[0]
                            c0 = e[0]
                            if c0 is None or c0 > cur:
                                break
                            rob_popleft()
                            k += 1
                            if e[2]:
                                annulled_n += 1
                            else:
                                committed += 1
                            rn = e[5]
                            if rn == 1:
                                free_int += 1
                            elif rn == 2:
                                free_fp += 1
                            d = e[9]
                            if d >= 0 and producer[d] is e:
                                producer[d] = None
                        cur += 1
                    if t == _NEVER:
                        # pure drain with no issue events left: the ROB
                        # is fully issued and has just been emptied; the
                        # wave loop's final ``cur`` is the exit cycle.
                        cycle = cur
                        continue
                    span = t - cycle
                    if mode == 1:
                        fetch_stall += span
                    elif mode == 2:
                        fence_stall_c += span
                        fetch_stall += span
                    elif mode == 3:
                        icache_stall += span
                        fetch_stall += span
                    if qlen[0] >= QCAP[0]:
                        qfull[0] += span
                    if qlen[1] >= QCAP[1]:
                        qfull[1] += span
                    if qlen[2] >= QCAP[2]:
                        qfull[2] += span
                    if qlen[3] >= QCAP[3]:
                        qfull[3] += span
                    cycle = t

            # -- 1. commit ------------------------------------------------------
            k = 0
            while rob and k < CW:
                e = rob[0]
                c0 = e[0]
                if c0 is None or c0 > cycle:
                    break
                rob_popleft()
                k += 1
                if e[2]:
                    annulled_n += 1
                else:
                    committed += 1
                rn = e[5]
                if rn == 1:
                    free_int += 1
                elif rn == 2:
                    free_fp += 1
                d = e[9]
                if d >= 0 and producer[d] is e:
                    producer[d] = None

            # -- 2. issue -------------------------------------------------------
            cand = bucket_pop(cycle, None)
            if cand is not None or carry:
                if cand is None:
                    cand = carry
                    carry = []
                elif carry:
                    carry.extend(cand)
                    cand = carry
                    carry = []
                    cand.sort(key=_AGE)
                elif len(cand) > 1:
                    cand.sort(key=_AGE)
                iss = [0, 0, 0, 0, 0, 0, 0]
                for e in cand:
                    u = e[4]
                    if iss[u] >= UCAP[u] or (u == 6 and cycle < fpdiv_busy):
                        carry.append(e)
                        continue
                    iss[u] += 1
                    uissues[u] += 1
                    if e[2]:
                        lat = 1
                    else:
                        lat = lats[e[1]]
                        a = e[3]
                        if a >= 0:
                            d_acc += 1
                            blk = a >> line_shift
                            s = dsets[blk & dset_mask]
                            tag = blk >> dtag_shift
                            if tag in s:
                                s.remove(tag)
                                s.append(tag)
                            else:
                                d_miss += 1
                                s.append(tag)
                                if len(s) > ASSOC:
                                    s.pop(0)
                                lat += MISS
                    if u == 6:
                        fpdiv_busy = cycle + lat
                    c2 = cycle + lat
                    e[0] = c2
                    qlen[e[11]] -= 1
                    w = e[8]
                    if w:
                        for x in w:
                            x[6] -= 1
                            if c2 > x[7]:
                                x[7] = c2
                            if not x[6]:
                                k2 = x[7]
                                if k2 <= cycle:
                                    k2 = cycle + 1
                                b = bucket_get(k2)
                                if b is None:
                                    bucket[k2] = [x]
                                else:
                                    b.append(x)
                    e[8] = None
                for u in range(7):
                    n_ = iss[u]
                    if n_ and n_ >= UCAP[u]:
                        ufull[u] += 1

            # -- 3. dispatch ----------------------------------------------------
            open_ = True
            if redirect is not None:
                c0 = redirect[0]
                if c0 is None or cycle < c0 + RECOV:
                    fetch_stall += 1
                    open_ = False
                else:
                    redirect = None
                    cur_line = -1
            if open_ and fence is not None:
                c0 = fence[0]
                if c0 is None or cycle < c0 + FSTALL:
                    fence_stall_c += 1
                    fetch_stall += 1
                    open_ = False
                else:
                    fence = None
            if open_ and cycle < fetch_resume:
                icache_stall += 1
                fetch_stall += 1
                open_ = False
            if open_:
                for _ in range(DW):
                    if di >= nidx and (exhausted or not refill()):
                        break
                    pc = idxs[di]
                    fl, line, qi, rn, un, dfid, uses = dmeta[pc]
                    if line != cur_line:
                        # ``line`` is (pc*4) >> line_shift, i.e. the block
                        cur_line = line
                        i_acc += 1
                        s = isets[line & iset_mask]
                        tag = line >> itag_shift
                        if tag in s:
                            s.remove(tag)
                            s.append(tag)
                        else:
                            i_miss += 1
                            s.append(tag)
                            if len(s) > ASSOC:
                                s.pop(0)
                            fetch_resume = cycle + MISS
                            break
                    if fl & 128:           # F_UNMODELED
                        raise UnmodeledOpcode(
                            f"opcode {ops[pc]!r} reached the timing "
                            f"simulator but has no modeled functional "
                            f"unit", pc=pc)
                    if len(rob) >= ROB_SIZE:
                        break
                    if qlen[qi] >= QCAP[qi]:
                        break
                    if rn == 1:
                        if free_int <= 0:
                            break
                    elif rn == 2:
                        if free_fp <= 0:
                            break
                    if step_no == next_ann:
                        ann = True
                        ai += 1
                        next_ann = anns[ai] if ai < len(anns) else -1
                        addr = -1
                    else:
                        ann = False
                        if fl & 32:        # F_MEM
                            addr = mems[mi]
                            mi += 1
                        else:
                            addr = -1
                    e = [None, pc, ann, addr, un, rn, 0, 0, None, dfid,
                         step_no, qi]
                    if rn == 1:
                        free_int -= 1
                    elif rn == 2:
                        free_fp -= 1
                    pend = 0
                    rdy = 0
                    for rid in uses:
                        p = producer[rid]
                        if p is not None:
                            pc0 = p[0]
                            if pc0 is None:
                                pend += 1
                                w = p[8]
                                if w is None:
                                    p[8] = [e]
                                else:
                                    w.append(e)
                            elif pc0 > rdy and pc0 > cycle:
                                rdy = pc0
                    if fl & 16 and not ann:    # F_FENCE: wait on in-flight
                        for x in rob:
                            xc = x[0]
                            if xc is None:
                                pend += 1
                                w = x[8]
                                if w is None:
                                    x[8] = [e]
                                else:
                                    w.append(e)
                            elif xc > rdy and xc > cycle:
                                rdy = xc
                    e[6] = pend
                    e[7] = rdy
                    if not pend:
                        key = rdy if rdy > cycle else cycle + 1
                        b = bucket_get(key)
                        if b is None:
                            bucket[key] = [e]
                        else:
                            b.append(e)
                    if not ann and dfid >= 0:
                        producer[dfid] = e
                    qlen[qi] += 1
                    rob_append(e)
                    stall = False
                    if fl & 16 and not ann:
                        fence_ev += 1
                        fence = e
                        stall = True
                    elif fl & 1 and not ann:   # F_BRANCH
                        tk = bool(brs[bi])
                        bi += 1
                        if not pred_access(pc, instrs[pc], tk, target=pc):
                            mispredicts += 1
                            redirect = e
                            stall = True
                    elif fl & 8:               # F_JRJALR (even annulled)
                        if not predictor.indirect_resolves_in_fetch():
                            indirect += 1
                            pstats.indirect_stalls += 1
                            redirect = e
                            stall = True
                    step_no += 1
                    di += 1
                    if di >= nidx and not exhausted:
                        refill()
                    if stall:
                        break

            # -- 4. occupancy ---------------------------------------------------
            if qlen[0] >= QCAP[0]:
                qfull[0] += 1
            if qlen[1] >= QCAP[1]:
                qfull[1] += 1
            if qlen[2] >= QCAP[2]:
                qfull[2] += 1
            if qlen[3] >= QCAP[3]:
                qfull[3] += 1
            cycle += 1
            if cycle > 10_000_000_000:  # pragma: no cover
                raise RuntimeError("timing simulation did not converge")

        ist = self.icache.stats
        ist.accesses += i_acc
        ist.misses += i_miss
        dst = self.dcache.stats
        dst.accesses += d_acc
        dst.misses += d_miss
        st = self.stats
        st.cycles = cycle
        st.committed = committed
        st.annulled = annulled_n
        st.dispatched = committed + annulled_n
        st.fetch_stall_cycles = fetch_stall
        st.icache_stall_cycles = icache_stall
        st.mispredict_events = mispredicts
        st.indirect_stall_events = indirect
        st.fence_stall_cycles = fence_stall_c
        st.fence_events = fence_ev
        for i, name in enumerate(QUEUE_NAMES):
            st.queue_full_cycles[name] = qfull[i]
        for i, name in enumerate(UNIT_NAMES):
            st.unit_full_cycles[name] = ufull[i]
            st.unit_issues[name] = uissues[i]
        return st
