"""Backend selection and the contained fast-simulation entry point.

Two execution backends exist for every cell:

* ``"reference"`` — the readable interpreters in :mod:`repro.sim`
  (the default, and the arbiter of correctness);
* ``"fast"`` — :mod:`repro.fastsim`'s decode-once + generated-step
  functional executor feeding the batched-event timing model.

Selection is per-run: the ``backend=`` parameter on
:class:`repro.api.Session` / ``run_suite`` / ``execute_cell``, the
``--backend`` CLI flag, or the ``REPRO_BACKEND`` environment variable
(:func:`resolve_backend` arbitrates, explicit argument first).  Engine
cache keys and the serve protocol carry the identifier, so results from
one backend are never served to a request for the other.

Containment contract of :func:`simulate` (the entry point
``engine.cells.counted_simulate`` routes through):

* **Program-semantic failures** — ``SimulationError`` subclasses
  (step budget, divergence, unmodeled opcode), alignment faults, float
  conversion errors — propagate unchanged: both backends fail a cell
  with the same exception, so a FAIL(...) cell payload is
  backend-independent.
* **Fastsim-internal failures** — decode rejection, codegen syntax
  errors (e.g. the ``fastsim-bad-codegen`` fault), stale decode tables,
  or an unexpected crash inside generated code — are *not* the
  program's fault: the run transparently restarts on the reference
  backend (deterministic, so a semantic failure would reproduce there)
  and the decision is recorded on :func:`fallback_trail` plus the
  ``fastsim.fallbacks`` metric.

Observer-instrumented runs (``repro.obs`` pipeline observer) always use
the reference pipeline — the observer hooks the reference cycle loop.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Optional

from ..isa.program import Program
from ..obs.metrics import REGISTRY
from ..obs.pipeline_obs import maybe_observer
from ..sim.config import MachineConfig
from ..sim.functional import ExecStats, FunctionalSim
from ..sim.memory import AlignmentError
from ..sim.pipeline import TimingSim
from ..sim.stats import SimStats
from .codegen import get_compiled
from .decode import decode_program
from .functional import FastFunctionalSim
from .timing import FastTimingSim

#: Valid backend identifiers, in documentation order.
BACKENDS = ("reference", "fast")
DEFAULT_BACKEND = "reference"
#: Environment variable consulted when no explicit backend is given.
ENV_BACKEND = "REPRO_BACKEND"

#: Exceptions that are the *program's* fault: identical on both
#: backends, so they propagate instead of triggering a fallback.
#: RuntimeError covers SimulationError and the cell watchdog's timeout.
_SEMANTIC = (RuntimeError, AlignmentError, ValueError, OverflowError,
             struct.error)

_TRAIL_CAP = 64


class FastsimError(RuntimeError):
    """An internal fast-backend failure (not a program-semantic one)."""


@dataclass(frozen=True)
class FallbackRecord:
    """One fast→reference fallback decision."""

    stage: str     # "decode" | "codegen" | "execute" | "observer"
    reason: str    # one-line classification


_TRAIL: list = []


def _fallback(stage: str, reason: str) -> None:
    if len(_TRAIL) >= _TRAIL_CAP:
        del _TRAIL[0]
    _TRAIL.append(FallbackRecord(stage, reason))
    REGISTRY.inc("fastsim.fallbacks")
    REGISTRY.inc(f"fastsim.fallbacks.{stage}")


def fallback_trail() -> tuple:
    """The recent fast→reference fallback decisions (newest last)."""
    return tuple(_TRAIL)


def clear_fallback_trail() -> None:
    """Forget recorded fallbacks (test isolation)."""
    _TRAIL.clear()


def _short(exc: BaseException) -> str:
    text = str(exc).splitlines()[0] if str(exc) else ""
    name = type(exc).__name__
    return f"{name}: {text}"[:120] if text else name


def resolve_backend(backend: Optional[str] = None) -> str:
    """Arbitrate the backend: explicit argument > env var > default."""
    if backend is None:
        backend = os.environ.get(ENV_BACKEND) or DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}: expected one of {BACKENDS}")
    return backend


def _reference_simulate(prog: Program, config: MachineConfig,
                        max_steps: int) -> tuple:
    fsim = FunctionalSim(prog, max_steps=max_steps, record_outcomes=False)
    tsim = TimingSim(config, observer=maybe_observer())
    stats = tsim.run(fsim.trace())
    return stats, fsim.stats


def simulate(prog: Program, config: MachineConfig,
             max_steps: int = 20_000_000) -> tuple:
    """Fast functional + timing simulation with reference fallback.

    Returns ``(SimStats, ExecStats)`` exactly like the reference pair in
    ``engine.cells.counted_simulate``.
    """
    if maybe_observer() is not None:
        _fallback("observer", "pipeline observer active")
        return _reference_simulate(prog, config, max_steps)
    try:
        dec = decode_program(prog)
    except Exception as exc:
        _fallback("decode", _short(exc))
        return _reference_simulate(prog, config, max_steps)
    try:
        get_compiled(dec, record=False, trace=True)
        fsim = FastFunctionalSim(prog, max_steps=max_steps,
                                 record_outcomes=False, decoded=dec)
        tsim = FastTimingSim(config, decoded=dec)
    except Exception as exc:
        _fallback("codegen", _short(exc))
        return _reference_simulate(prog, config, max_steps)
    try:
        stats = tsim.run(fsim.batches())
    except _SEMANTIC:
        raise
    except Exception as exc:
        # An unexpected crash inside the fast path: rerun on the
        # reference.  Execution is deterministic, so any genuine program
        # failure reproduces there with the canonical exception.
        _fallback("execute", _short(exc))
        return _reference_simulate(prog, config, max_steps)
    return stats, fsim.stats


def functional_sim(prog: Program, max_steps: int = 20_000_000,
                   record_outcomes: bool = True):
    """A functional simulator on the fast backend (reference fallback).

    Used by profile collection (``ProfileDB.from_run``) when the run is
    on the fast backend; exposes the reference surface (``run``,
    ``stats``, ``index_counts``).
    """
    try:
        dec = decode_program(prog)
        get_compiled(dec, record=record_outcomes, trace=False)
        return FastFunctionalSim(prog, max_steps=max_steps,
                                 record_outcomes=record_outcomes,
                                 decoded=dec)
    except Exception as exc:
        _fallback("codegen", _short(exc))
        return FunctionalSim(prog, max_steps=max_steps,
                             record_outcomes=record_outcomes)
