"""Fastsim fault injection: prove the backend containment ladder holds.

The fast backend's contract (:mod:`repro.fastsim.backend`) is that
*internal* fastsim failures never change results — the run transparently
restarts on the reference interpreter and the decision lands on the
fallback trail.  These injectors corrupt the fast path at each of its
stages so ``tools/inject_faults.py`` and ``tests/robust`` can assert the
claim end to end:

* ``fastsim-bad-codegen`` — the generated specialized-step source is
  corrupted into a ``SyntaxError`` before ``compile()``; contained at
  the **codegen** stage.
* ``fastsim-stale-decode`` — the decode pass returns operand tables
  built from a different (re-parsed) program object, tripping the
  staleness signature check; contained at the **codegen** stage with a
  ``DecodeError: stale decode tables ...`` reason.
* ``fastsim-runtime-crash`` — the generated drive loop raises a
  non-semantic exception (``KeyError``) on entry; contained at the
  **execute** stage after codegen succeeded.

Program-semantic failures (``UnmodeledOpcode``, alignment traps, step
budgets) are deliberately NOT injectable here: both backends must raise
them identically, producing the same ``FAIL(...)`` cell — that half of
the contract is asserted directly by the containment tests.

All injection happens through documented module hooks
(:data:`repro.fastsim.codegen._SOURCE_TRANSFORM`, the backend's
``decode_program`` binding) inside a context manager that always
restores the pristine state.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..isa.program import Program
from . import backend as _backend
from . import codegen as _codegen

#: Fault-class name -> one-line description (harness report text).
FASTSIM_FAULTS = {
    "fastsim-bad-codegen":
        "generated-step source corrupted into a SyntaxError "
        "(contained: codegen-stage fallback)",
    "fastsim-stale-decode":
        "decode tables from a different program object "
        "(contained: codegen-stage fallback, DecodeError)",
    "fastsim-runtime-crash":
        "generated drive loop raises a non-semantic error "
        "(contained: execute-stage fallback)",
}


def _bad_codegen(src: str) -> str:
    return src + "\n    this is ( not python\n"


def _runtime_crash(src: str) -> str:
    return src.replace(
        "    def drive():",
        "    def drive():\n"
        "        raise KeyError('injected fastsim runtime fault')",
        1)


@contextmanager
def inject_fastsim_fault(name: str) -> Iterator[None]:
    """Corrupt the fast path for the duration of the ``with`` block."""
    if name not in FASTSIM_FAULTS:
        raise ValueError(f"unknown fastsim fault {name!r}: expected one "
                         f"of {sorted(FASTSIM_FAULTS)}")
    if name == "fastsim-stale-decode":
        real = _backend.decode_program

        def stale_decode(prog):
            # Tables from an equal-content clone: the identity half of
            # the staleness signature (prog is not dec.prog) trips.
            return real(Program.from_dict(prog.to_dict()))

        _backend.decode_program = stale_decode
        try:
            yield
        finally:
            _backend.decode_program = real
        return
    transform = (_bad_codegen if name == "fastsim-bad-codegen"
                 else _runtime_crash)
    prev = _codegen._SOURCE_TRANSFORM
    _codegen._SOURCE_TRANSFORM = transform
    try:
        yield
    finally:
        _codegen._SOURCE_TRANSFORM = prev
