"""Generated-Python specialized-step backend (one function per block).

:func:`generate_source` turns a :class:`~repro.fastsim.decode.DecodedProgram`
into the source of one Python module::

    def _make(ctx):
        ... bind memory methods / register lists / counters ...
        def b0():   # one function per basic block
            bcounts[0] += 1
            idxs.extend((0, 1, 2))
            R[5] = (R[3] + R[4]) & 4294967295
            ...
            steps += 3
            _t = R[2] == R[6]
            branches += 1
            brs.append(_t)
            if _t:
                taken += 1
                return 7
            return 4
        ...
        def drive(): ...   # block dispatch + step budget + batch flush
        return drive, swap, snapshot

Immediates, register indices, branch targets and successor block ids are
constant-folded into the source; ``exec``-compiling it gives a dispatch
loop that never inspects an :class:`Instruction` object.  Superblock
dispatch: straight-line code inside a block, control logic only at the
end.

Exactness rules (the generated code must be byte-for-byte equivalent to
:class:`~repro.sim.functional.FunctionalSim` in every observable —
``ExecStats`` counters, register/memory state, trace-entry stream,
branch-outcome vectors, and the pc/step coordinates of every raised
exception):

* every architectural value is computed by the same expression the
  reference uses (``int(a / b)`` division, ``& 0xFFFFFFFF`` write
  masking, sign extension via ``(x ^ 2**31) - 2**31``);
* memory is accessed through the *same bound methods* on the same
  :class:`~repro.sim.memory.Memory` object, in the same order, so page
  allocation (and therefore image diffing) is identical;
* ops that can raise (aligned word/half access, ``cvtfi``, ``swf``
  float packing) stamp an ``err = (pc, offset, blocklen, bid)`` marker
  first, so the caller can repair step/pc bookkeeping to the exact
  instruction the reference would have reported;
* blocks containing anything the emitter does not fully understand
  (non-integer immediates, unknown opcodes, odd register classes)
  compile to a *bail block* that hands control to the reference
  interpreter mid-run — unmodeled programs stay exactly as unmodeled as
  before.

Return protocol of a block function: ``>= 0`` next block id, ``-1``
halt (``bail_pc`` holds the final pc), ``-3`` bail to the reference
interpreter at ``bail_pc``.  ``drive()`` returns 0 halt, 1 batch full,
2 step-budget bail, 3 interpreter bail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .decode import (F_BRANCH, F_HALT, F_JUMP, DecodedProgram, DecodeError,
                     reg_id)

M32 = "4294967295"

#: Test/fault-injection hook: when set, applied to the generated source
#: before compilation (and the compile cache is bypassed so corrupted
#: code never outlives the hook).  See repro.fastsim.faults.
_SOURCE_TRANSFORM: Optional[Callable[[str], str]] = None


class _Unsupported(Exception):
    """This instruction cannot be specialized; its block bails."""


@dataclass
class CompiledFunctional:
    """One exec-compiled codegen variant of a program."""

    source: str
    code: object
    n_bail_blocks: int
    record: bool
    trace: bool


# -- operand helpers ---------------------------------------------------------

def _ri(name: Optional[str]) -> str:
    if name is None:
        raise _Unsupported("missing int register")
    i = reg_id(name)
    if i >= 32:
        raise _Unsupported(f"{name} is not an int register")
    return f"R[{i}]"


def _fi(name: Optional[str]) -> str:
    if name is None:
        raise _Unsupported("missing fp register")
    i = reg_id(name)
    if not 32 <= i < 64:
        raise _Unsupported(f"{name} is not an fp register")
    return f"F[{i - 32}]"


def _ci(name: Optional[str]) -> str:
    if name is None:
        raise _Unsupported("missing cc register")
    i = reg_id(name)
    if i < 64:
        raise _Unsupported(f"{name} is not a cc register")
    return f"C[{i - 64}]"


def _sgn(expr: str) -> str:
    return f"(({expr} ^ 2147483648) - 2147483648)"


def _imm(ins) -> int:
    v = ins.imm
    if not isinstance(v, int) or isinstance(v, bool):
        raise _Unsupported(f"non-integer immediate {v!r}")
    return v


def _addr(ins) -> tuple:
    """(setup-expression for _a, base register) of a load address."""
    base = _ri(ins.srcs[0] if ins.info.is_load else ins.srcs[1])
    imm = _imm(ins)
    if imm == 0:
        return f"_a = {base}", base
    return f"_a = ({base} + ({imm})) & {M32}", base


_SLT_CMP = {"seq": "==", "sne": "!=", "sge": ">=", "sgt": ">", "sle": "<="}
_CMP_CC = {"cmpeq": "==", "cmpne": "!=", "cmplt": "<",
           "cmple": "<=", "cmpgt": ">", "cmpge": ">="}
_FCMP_CC = {"fcmpeq": "==", "fcmplt": "<", "fcmple": "<="}


class _Emitter:
    """Accumulates generated lines for one block, tracking nonlocals."""

    def __init__(self, record: bool, trace: bool):
        self.record = record
        self.trace = trace
        self.lines: list = []          # (indent, text)
        self.nonlocals: set = {"steps"}
        self.bo_uids: set = set()      # branch uids needing _bo<uid> slots

    def put(self, indent: int, *texts: str) -> None:
        for t in texts:
            self.lines.append((indent, t))

    def count(self, ind: int, counter: str) -> None:
        self.nonlocals.add(counter)
        self.put(ind, f"{counter} += 1")

    # -- one non-terminator instruction (exec arm) ---------------------------

    def exec_lines(self, ins, pc: int, k: int, blocklen: int,
                   bid: int) -> list:
        """Generated statements for *ins* (sans guard); [] means no-op."""
        op = ins.op
        out: list = []

        def emit(*texts):
            out.extend(texts)

        def bump(counter):
            self.nonlocals.add(counter)
            out.append(f"{counter} += 1")

        def mark_raising():
            self.nonlocals.add("err")
            out.append(f"err = ({pc}, {k}, {blocklen}, {bid})")

        d = ins.dest
        skip_dest = d == "r0"
        s = ins.srcs

        if op in ("add", "sub", "and", "or", "xor"):
            if skip_dest:
                return out
            sym = {"add": "+", "sub": "-", "and": "&", "or": "|",
                   "xor": "^"}[op]
            expr = f"{_ri(s[0])} {sym} {_ri(s[1])}"
            if op in ("add", "sub"):
                expr = f"({expr}) & {M32}"
            emit(f"{_ri(d)} = {expr}")
        elif op in ("addi", "subi"):
            if skip_dest:
                return out
            sym = "+" if op == "addi" else "-"
            emit(f"{_ri(d)} = ({_ri(s[0])} {sym} ({_imm(ins)})) & {M32}")
        elif op in ("andi", "ori", "xori"):
            if skip_dest:
                return out
            sym = {"andi": "&", "ori": "|", "xori": "^"}[op]
            emit(f"{_ri(d)} = {_ri(s[0])} {sym} {_imm(ins) & 0xFFFFFFFF}")
        elif op == "mul":
            if skip_dest:
                return out
            emit(f"{_ri(d)} = ({_sgn(_ri(s[0]))} * {_sgn(_ri(s[1]))}) "
                 f"& {M32}")
        elif op == "muli":
            if skip_dest:
                return out
            emit(f"{_ri(d)} = ({_sgn(_ri(s[0]))} * ({_imm(ins)})) & {M32}")
        elif op in ("div", "rem"):
            a, b = _sgn(_ri(s[0])), _sgn(_ri(s[1]))
            if skip_dest:
                emit(f"if {b} == 0:")
                self.nonlocals.add("dbz")
                emit("    dbz += 1")
                return out
            emit(f"_b = {b}", "if _b == 0:")
            self.nonlocals.add("dbz")
            emit("    dbz += 1", f"    {_ri(d)} = 0", "else:")
            if op == "div":
                emit(f"    {_ri(d)} = int({a} / _b) & {M32}")
            else:
                emit(f"    _v = {a}",
                     f"    {_ri(d)} = (_v - int(_v / _b) * _b) & {M32}")
        elif op in ("nor", "not"):
            if skip_dest:
                return out
            inner = (f"{_ri(s[0])} | {_ri(s[1])}" if op == "nor"
                     else _ri(s[0]))
            emit(f"{_ri(d)} = ~({inner}) & {M32}")
        elif op == "neg":
            if skip_dest:
                return out
            emit(f"{_ri(d)} = -{_ri(s[0])} & {M32}")
        elif op == "mov":
            if skip_dest:
                return out
            emit(f"{_ri(d)} = {_ri(s[0])}")
        elif op == "li":
            if skip_dest:
                _imm(ins)
                return out
            emit(f"{_ri(d)} = {_imm(ins) & 0xFFFFFFFF}")
        elif op == "lui":
            if skip_dest:
                _imm(ins)
                return out
            emit(f"{_ri(d)} = {(_imm(ins) << 16) & 0xFFFFFFFF}")
        elif op in ("slt", "sltu") or op in _SLT_CMP:
            if skip_dest:
                return out
            if op == "slt":
                cond = f"{_sgn(_ri(s[0]))} < {_sgn(_ri(s[1]))}"
            elif op == "sltu":
                cond = f"{_ri(s[0])} < {_ri(s[1])}"
            elif op in ("seq", "sne"):
                cond = f"{_ri(s[0])} {_SLT_CMP[op]} {_ri(s[1])}"
            else:
                cond = (f"{_sgn(_ri(s[0]))} {_SLT_CMP[op]} "
                        f"{_sgn(_ri(s[1]))}")
            emit(f"{_ri(d)} = 1 if {cond} else 0")
        elif op == "slti":
            if skip_dest:
                return out
            emit(f"{_ri(d)} = 1 if {_sgn(_ri(s[0]))} < ({_imm(ins)}) "
                 f"else 0")
        elif op in ("sll", "srl", "sra"):
            if skip_dest:
                _imm(ins)
                return out
            sh = _imm(ins) & 31
            if op == "sll":
                emit(f"{_ri(d)} = ({_ri(s[0])} << {sh}) & {M32}")
            elif op == "srl":
                emit(f"{_ri(d)} = {_ri(s[0])} >> {sh}")
            else:
                emit(f"{_ri(d)} = ({_sgn(_ri(s[0]))} >> {sh}) & {M32}")
        elif op in ("sllv", "srlv", "srav"):
            if skip_dest:
                return out
            sh = f"({_ri(s[1])} & 31)"
            if op == "sllv":
                emit(f"{_ri(d)} = ({_ri(s[0])} << {sh}) & {M32}")
            elif op == "srlv":
                emit(f"{_ri(d)} = {_ri(s[0])} >> {sh}")
            else:
                emit(f"{_ri(d)} = ({_sgn(_ri(s[0]))} >> {sh}) & {M32}")

        # -- memory ----------------------------------------------------------
        # Word and byte accesses are inlined against the Memory page dict
        # with byte-exact allocation semantics (reads never allocate,
        # writes always do); the unaligned path defers to the real method
        # so the AlignmentError text/coordinates stay identical.
        elif op == "lw":
            setup, _ = _addr(ins)
            emit(setup, "if _a & 3:")
            self.nonlocals.add("err")
            emit(f"    err = ({pc}, {k}, {blocklen}, {bid})", "    rw(_a)")
            if not skip_dest:
                emit("else:",
                     "    _pg = PG(_a >> 12)",
                     f"    {_ri(d)} = 0 if _pg is None "
                     f"else U32(_pg, _a & 4095)[0]")
            if self.trace:
                emit("mems.append(_a)")
            bump("loads")
        elif op in ("lb", "lbu"):
            setup, _ = _addr(ins)
            emit(setup)
            if not skip_dest:
                emit("_pg = PG(_a >> 12)")
                if op == "lbu":
                    emit(f"{_ri(d)} = _pg[_a & 4095] "
                         f"if _pg is not None else 0")
                else:
                    emit("_v = _pg[_a & 4095] if _pg is not None else 0",
                         f"{_ri(d)} = (_v - 256) & {M32} if _v & 128 "
                         f"else _v")
            if self.trace:
                emit("mems.append(_a)")
            bump("loads")
        elif op in ("lh", "lhu"):
            setup, _ = _addr(ins)
            emit(setup)
            mark_raising()
            if skip_dest:
                emit("rh(_a)")
            elif op == "lhu":
                emit(f"{_ri(d)} = rh(_a)")
            else:
                emit("_v = rh(_a)",
                     f"{_ri(d)} = (_v - 65536) & {M32} if _v & 32768 "
                     f"else _v")
            if self.trace:
                emit("mems.append(_a)")
            bump("loads")
        elif op == "sw":
            setup, _ = _addr(ins)
            emit(setup, "if _a & 3:")
            self.nonlocals.add("err")
            emit(f"    err = ({pc}, {k}, {blocklen}, {bid})",
                 f"    ww(_a, {_ri(s[0])})",
                 "else:",
                 "    _pno = _a >> 12",
                 "    _pg = PG(_pno)",
                 "    if _pg is None:",
                 "        _pg = PAGES[_pno] = bytearray(4096)",
                 "    _o = _a & 4095",
                 f"    _pg[_o:_o + 4] = P32({_ri(s[0])})")
            if self.trace:
                emit("mems.append(_a)")
            bump("stores")
        elif op == "sb":
            setup, _ = _addr(ins)
            emit(setup,
                 "_pno = _a >> 12",
                 "_pg = PG(_pno)",
                 "if _pg is None:",
                 "    _pg = PAGES[_pno] = bytearray(4096)",
                 f"_pg[_a & 4095] = {_ri(s[0])} & 255")
            if self.trace:
                emit("mems.append(_a)")
            bump("stores")
        elif op == "sh":
            setup, _ = _addr(ins)
            emit(setup)
            mark_raising()
            emit(f"wh(_a, {_ri(s[0])})")
            if self.trace:
                emit("mems.append(_a)")
            bump("stores")
        elif op == "lwf":
            setup, _ = _addr(ins)
            emit(setup, f'{_fi(d)} = unpack("<f", rbs(_a, 4))[0]')
            if self.trace:
                emit("mems.append(_a)")
            bump("loads")
        elif op == "swf":
            setup, _ = _addr(ins)
            emit(setup)
            mark_raising()
            emit(f'wbs(_a, pack("<f", {_fi(s[0])}))')
            if self.trace:
                emit("mems.append(_a)")
            bump("stores")

        # -- condition codes -------------------------------------------------
        elif op in _CMP_CC:
            sym = _CMP_CC[op]
            if op in ("cmpeq", "cmpne"):
                emit(f"{_ci(d)} = {_ri(s[0])} {sym} {_ri(s[1])}")
            else:
                emit(f"{_ci(d)} = {_sgn(_ri(s[0]))} {sym} "
                     f"{_sgn(_ri(s[1]))}")
        elif op == "cmpi":
            emit(f"{_ci(d)} = {_sgn(_ri(s[0]))} < ({_imm(ins)})")
        elif op == "cand":
            emit(f"{_ci(d)} = {_ci(s[0])} and {_ci(s[1])}")
        elif op == "cor":
            emit(f"{_ci(d)} = {_ci(s[0])} or {_ci(s[1])}")
        elif op == "cxor":
            emit(f"{_ci(d)} = {_ci(s[0])} != {_ci(s[1])}")
        elif op == "cnot":
            emit(f"{_ci(d)} = not {_ci(s[0])}")
        elif op == "cmov":
            emit(f"{_ci(d)} = {_ci(s[0])}")

        # -- conditional moves -----------------------------------------------
        elif op in ("cmovt", "cmovf"):
            if skip_dest:
                return out
            cond = _ci(s[1]) if op == "cmovt" else f"not {_ci(s[1])}"
            emit(f"if {cond}:", f"    {_ri(d)} = {_ri(s[0])}")
        elif op in ("movz", "movn"):
            if skip_dest:
                return out
            sym = "==" if op == "movz" else "!="
            emit(f"if {_ri(s[1])} {sym} 0:",
                 f"    {_ri(d)} = {_ri(s[0])}")

        # -- floating point --------------------------------------------------
        elif op in ("fadd", "fsub", "fmul"):
            sym = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
            emit(f"{_fi(d)} = {_fi(s[0])} {sym} {_fi(s[1])}")
        elif op == "fdiv":
            emit(f"_fb = {_fi(s[1])}", "if _fb == 0.0:")
            self.nonlocals.add("dbz")
            emit("    dbz += 1", f"    {_fi(d)} = 0.0",
                 "else:", f"    {_fi(d)} = {_fi(s[0])} / _fb")
        elif op == "fmov":
            emit(f"{_fi(d)} = {_fi(s[0])}")
        elif op == "fneg":
            emit(f"{_fi(d)} = -{_fi(s[0])}")
        elif op in _FCMP_CC:
            emit(f"{_ci(d)} = {_fi(s[0])} {_FCMP_CC[op]} {_fi(s[1])}")
        elif op == "cvtif":
            emit(f"{_fi(d)} = float({_sgn(_ri(s[0]))})")
        elif op == "cvtfi":
            mark_raising()
            if skip_dest:
                emit(f"int({_fi(s[0])})")
            else:
                emit(f"{_ri(d)} = int({_fi(s[0])}) & {M32}")

        elif op == "fence":
            bump("fences")
        elif op == "nop":
            pass
        else:
            raise _Unsupported(f"opcode {op!r}")
        return out

    # -- control-flow terminators --------------------------------------------

    def succ_lines(self, dec: DecodedProgram, s: int) -> list:
        """Jump-to-pc statements: block return or interpreter bail."""
        if 0 <= s < dec.n and dec.block_at[s] >= 0:
            return [f"return {dec.block_at[s]}"]
        self.nonlocals.add("bail_pc")
        return [f"bail_pc = {s}", "return -3"]

    def branch_cond(self, ins) -> str:
        op = ins.op
        base = op[:-1] if ins.is_likely else op
        s = ins.srcs
        if base in ("beq", "bne"):
            sym = "==" if base == "beq" else "!="
            return f"{_ri(s[0])} {sym} {_ri(s[1])}"
        if base in ("bct", "bcf"):
            return _ci(s[0]) if base == "bct" else f"not {_ci(s[0])}"
        # Zero compares on the unsigned 32-bit value directly (register
        # writes are always masked, so sign(x) op 0 has a pure-unsigned
        # equivalent — saves the sign-extension arithmetic per branch).
        x = _ri(s[0])
        if base == "beqz":
            return f"{x} == 0"
        if base == "bnez":
            return f"{x} != 0"
        if base == "bltz":
            return f"{x} > 2147483647"
        if base == "bgez":
            return f"{x} < 2147483648"
        if base == "bgtz":
            return f"0 < {x} < 2147483648"
        if base == "blez":
            return f"{x} == 0 or {x} > 2147483647"
        raise _Unsupported(f"branch {op!r}")

    def record_lines(self, uid: int, pc: int) -> list:
        """Append ``_t`` to the branch-outcome vector of branch *uid*.

        The vector list is cached in a ``_bo<uid>`` closure slot so the
        steady state is one deref + append; creation stays lazy so the
        ``BO``/``BP`` dicts gain keys in first-execution order, exactly
        like the reference.
        """
        self.bo_uids.add(uid)
        self.nonlocals.add(f"_bo{uid}")
        return [f"if _bo{uid} is None:",
                f"    _bo{uid} = BO[{uid}] = []",
                f"    BP[{uid}] = {pc}",
                f"_bo{uid}.append(_t)"]

    def terminator_lines(self, dec: DecodedProgram, ins, pc: int) -> list:
        """Exec-arm statements of a block-ending instruction.

        Runs after ``steps`` was already advanced past the block, so the
        terminator's own dynamic step index is ``steps - 1``.
        """
        op = ins.op
        fl = dec.flags[pc]
        out: list = []
        if fl & F_HALT:
            self.nonlocals.add("bail_pc")
            return [f"bail_pc = {pc + 1}", "return -1"]
        if fl & F_BRANCH:
            out.append(f"_t = {self.branch_cond(ins)}")
            self.nonlocals.add("branches")
            out.append("branches += 1")
            if self.trace:
                out.append("brs.append(_t)")
            if self.record:
                out.extend(self.record_lines(ins.uid, pc))
            self.nonlocals.add("taken")
            out.append("if _t:")
            out.append("    taken += 1")
            out.extend("    " + ln
                       for ln in self.succ_lines(dec, dec.targets[pc]))
            out.extend(self.succ_lines(dec, pc + 1))
            return out
        if op == "j":
            self.nonlocals.add("jumps")
            out.append("jumps += 1")
            out.extend(self.succ_lines(dec, dec.targets[pc]))
            return out
        if op == "jal":
            out.append(f"{_ri(ins.dest)} = {pc + 1}")
            self.nonlocals.add("jumps")
            out.append("jumps += 1")
            out.extend(self.succ_lines(dec, dec.targets[pc]))
            return out
        if op in ("jr", "jalr"):
            out.append(f"_t = {_ri(ins.srcs[0])}")
            if op == "jalr" and ins.dest != "r0":
                out.append(f"{_ri(ins.dest)} = {pc + 1}")
            self.nonlocals.add("jumps")
            self.nonlocals.add("bail_pc")
            out.extend([
                "jumps += 1",
                f"if 0 <= _t < {dec.n}:",
                "    _nb = BA[_t]",
                "    if _nb >= 0:",
                "        return _nb",
                "bail_pc = _t",
                "return -3",
            ])
            return out
        raise _Unsupported(f"terminator {op!r}")


#: Max static instructions inlined into one superblock function.  The
#: trace variant feeds the timing model (whose cycle loop dominates), so
#: it skips cross-block inlining — back-edges to the block's own head
#: still loop for free — keeping its compile cost low for cold cells;
#: the run/record variant (profile collection) inlines aggressively.
_SB_CAP = 200
_SB_CAP_TRACE = 0


def _boundary_lines(em: "_Emitter", dec: DecodedProgram, fbid: int,
                    back_edge: bool) -> list:
    """Checks before entering *fbid* without returning to ``drive()``.

    Mirrors what the dispatch loop does between block calls: in trace
    mode a full batch hands control back (only needed on back edges —
    forward chains are bounded by the superblock cap), and the step
    budget is checked against the next block's length, bailing to the
    reference at its start (rc 3 and rc 2 share a handler upstream).
    """
    start, end = dec.blocks[fbid]
    out = []
    if em.trace and back_edge:
        out += ["if len(idxs) >= FLUSH:", f"    return {fbid}"]
    em.nonlocals.add("bail_pc")
    out += [f"if steps + {end - start} > max_steps:",
            f"    bail_pc = {start}",
            "    return -3"]
    return out


def _emit_chain(dec: DecodedProgram, bid: int, root: int, em: "_Emitter",
                chain: set, rem: list) -> None:
    """Emit block *bid* into *em*, inlining fallthrough successors.

    Superblock dispatch: the fallthrough continuation of an unguarded
    block end (plain or conditional-branch) is emitted inline, and any
    edge back to *root* becomes a ``continue`` of the enclosing
    ``while True`` — hot loops spin without returning to the dispatch
    trampoline.  Raises ``_Unsupported`` only for *bid*'s own code; a
    continuation that cannot be specialized is left as a ``return`` to
    its standalone (bail) function.
    """
    start, end = dec.blocks[bid]
    blen = end - start
    rem[0] -= blen
    instrs = dec.prog.instructions
    last_pc = end - 1
    has_term = bool(dec.flags[last_pc] & (F_BRANCH | F_JUMP | F_HALT))
    em.put(0, f"bcounts[{bid}] += 1")
    if em.trace:
        pcs = ", ".join(str(p) for p in range(start, end))
        comma = "," if blen == 1 else ""
        em.put(0, f"idxs.extend(({pcs}{comma}))")
    body_end = last_pc if has_term else end
    for k, pc in enumerate(range(start, body_end)):
        ins = instrs[pc]
        lines = em.exec_lines(ins, pc, k, blen, bid)
        guard = dec.guards[pc]
        if guard is None:
            em.put(0, *lines)
        else:
            gci, sense = guard
            annul = ["annulled += 1"]
            em.nonlocals.add("annulled")
            if em.trace:
                annul.append(f"anns.append(steps + {k})"
                             if k else "anns.append(steps)")
            if not lines:
                neg = "not " if sense else ""
                em.put(0, f"if {neg}C[{gci}]:")
                em.put(0, *("    " + ln for ln in annul))
            else:
                em.put(0, f"if C[{gci}]:")
                first, second = (lines, annul) if sense \
                    else (annul, lines)
                em.put(0, *("    " + ln for ln in first))
                em.put(0, "else:")
                em.put(0, *("    " + ln for ln in second))
    em.put(0, f"steps += {blen}")

    def succ_jump(s: int) -> list:
        # Taken/jump edge: loop back to the superblock head, or return.
        if 0 <= s < dec.n and dec.block_at[s] >= 0:
            t = dec.block_at[s]
            if t == root:
                return _boundary_lines(em, dec, root, True) + ["continue"]
            return [f"return {t}"]
        em.nonlocals.add("bail_pc")
        return [f"bail_pc = {s}", "return -3"]

    def succ_fall(s: int) -> None:
        # Fallthrough edge: inline the continuation when it fits.
        if not (0 <= s < dec.n and dec.block_at[s] >= 0):
            em.nonlocals.add("bail_pc")
            em.put(0, f"bail_pc = {s}", "return -3")
            return
        t = dec.block_at[s]
        if t == root:
            em.put(0, *_boundary_lines(em, dec, root, True))
            em.put(0, "continue")
            return
        tlen = dec.blocks[t][1] - dec.blocks[t][0]
        if t not in chain and rem[0] >= tlen:
            chain.add(t)
            mark = len(em.lines)
            rem0 = rem[0]
            em.put(0, *_boundary_lines(em, dec, t, False))
            try:
                _emit_chain(dec, t, root, em, chain, rem)
                return
            except (_Unsupported, DecodeError):
                del em.lines[mark:]
                rem[0] = rem0
        em.put(0, f"return {t}")

    if not has_term:
        succ_fall(end)
        return
    ins = instrs[last_pc]
    guard = dec.guards[last_pc]
    fl = dec.flags[last_pc]
    if guard is not None:
        # Guarded terminator: two live successors — no inlining, keep
        # the reference-shaped arm structure.
        tlines = em.terminator_lines(dec, ins, last_pc)
        gci, sense = guard
        annul = ["annulled += 1"]
        em.nonlocals.add("annulled")
        if em.trace:
            annul.append("anns.append(steps - 1)")
        if fl & F_HALT:
            em.nonlocals.add("bail_pc")
            annul += [f"bail_pc = {last_pc + 1}", "return -1"]
        else:
            annul += em.succ_lines(dec, last_pc + 1)
        em.put(0, f"if C[{gci}]:")
        first, second = (tlines, annul) if sense else (annul, tlines)
        em.put(0, *("    " + ln for ln in first))
        em.put(0, "else:")
        em.put(0, *("    " + ln for ln in second))
        return
    if fl & F_BRANCH:
        em.put(0, f"_t = {em.branch_cond(ins)}")
        em.nonlocals.add("branches")
        em.put(0, "branches += 1")
        if em.trace:
            em.put(0, "brs.append(_t)")
        if em.record:
            em.put(0, *em.record_lines(ins.uid, last_pc))
        em.nonlocals.add("taken")
        em.put(0, "if _t:")
        em.put(0, "    taken += 1")
        em.put(0, *("    " + ln
                    for ln in succ_jump(dec.targets[last_pc])))
        succ_fall(last_pc + 1)
        return
    op = ins.op
    if op == "j":
        # Static tail jump (loop closer): same continuation rules as a
        # fallthrough — inline when it fits, loop when it hits root.
        em.nonlocals.add("jumps")
        em.put(0, "jumps += 1")
        succ_fall(dec.targets[last_pc])
        return
    if op == "jal":
        # Call: don't inline the callee body (the matching jr returns
        # through the trampoline anyway; inlining only bloats codegen).
        em.put(0, f"{_ri(ins.dest)} = {last_pc + 1}")
        em.nonlocals.add("jumps")
        em.put(0, "jumps += 1")
        em.put(0, *succ_jump(dec.targets[last_pc]))
        return
    # halt / jr / jalr: single exit, nothing to inline.
    em.put(0, *em.terminator_lines(dec, ins, last_pc))


def _emit_block(dec: DecodedProgram, bid: int, record: bool,
                trace: bool) -> tuple:
    """(lines, bailed, bo_uids) for one superblock function ``b<bid>``."""
    start, _end = dec.blocks[bid]
    em = _Emitter(record, trace)
    try:
        cap = _SB_CAP_TRACE if trace else _SB_CAP
        _emit_chain(dec, bid, bid, em, {bid}, [cap])
    except (_Unsupported, DecodeError):
        # Bail block: the reference interpreter takes over at block start
        # (and reproduces any UnmodeledOpcode/odd-operand behavior
        # exactly, at reference speed).
        return ([f"    def b{bid}():",
                 "        nonlocal bail_pc",
                 f"        bail_pc = {start}",
                 "        return -3"], True, set())
    out = [f"    def b{bid}():"]
    nl = sorted(em.nonlocals)
    out.append(f"        nonlocal {', '.join(nl)}")
    out.append("        while True:")
    for ind, text in em.lines:
        out.append("            " + "    " * ind + text)
    return out, False, em.bo_uids


def generate_source(dec: DecodedProgram, *, record: bool,
                    trace: bool) -> tuple:
    """Source text of the specialized module; returns (source, n_bailed)."""
    nblocks = len(dec.blocks)
    out = [
        "def _make(ctx):",
        '    mem = ctx["mem"]',
        "    rw = mem.read_word; ww = mem.write_word",
        "    rb = mem.read_byte; wb = mem.write_byte",
        "    rh = mem.read_half; wh = mem.write_half",
        "    rbs = mem.read_bytes; wbs = mem.write_bytes",
        "    PAGES = mem._pages; PG = PAGES.get",
        '    U32 = ctx["U32"]; P32 = ctx["P32"]',
        '    unpack = ctx["unpack"]; pack = ctx["pack"]',
        '    R = ctx["R"]; F = ctx["F"]; C = ctx["C"]',
        '    bcounts = ctx["bcounts"]',
        '    BA = ctx["block_at"]',
        '    max_steps = ctx["max_steps"]',
        '    LENS = ctx["lens"]; STARTS = ctx["starts"]',
        "    steps = 0; annulled = 0; branches = 0; taken = 0; jumps = 0",
        "    loads = 0; stores = 0; dbz = 0; fences = 0",
        "    bail_pc = -1; err = None; entry = 0",
    ]
    if record:
        out.append('    BO = ctx["BO"]; BP = ctx["BP"]')
    if trace:
        out.append('    idxs = ctx["idxs"]; brs = ctx["brs"]')
        out.append('    mems = ctx["mems"]; anns = ctx["anns"]')
        out.append('    FLUSH = ctx["flush"]')
    n_bailed = 0
    blines: list = []
    bo_uids: set = set()
    for bid in range(nblocks):
        lines, bailed, uids = _emit_block(dec, bid, record, trace)
        n_bailed += bailed
        bo_uids |= uids
        blines.extend(lines)
    for uid in sorted(bo_uids):
        out.append(f"    _bo{uid} = None")
    out.extend(blines)
    names = ", ".join(f"b{i}" for i in range(nblocks))
    comma = "," if nblocks == 1 else ""
    out.append(f"    FNS = ({names}{comma})")
    out += [
        "    def drive():",
        "        nonlocal entry, bail_pc",
        "        bid = entry",
        "        fns = FNS; lens = LENS",
        "        while True:",
        "            if steps + lens[bid] > max_steps:",
        "                bail_pc = STARTS[bid]",
        "                entry = bid",
        "                return 2",
        "            nb = fns[bid]()",
        "            if nb < 0:",
        "                entry = bid",
        "                return 0 if nb == -1 else 3",
    ]
    if trace:
        out += [
            "            if len(idxs) >= FLUSH:",
            "                entry = nb",
            "                return 1",
        ]
    out.append("            bid = nb")
    if trace:
        out += [
            "    def swap(a, b, c, d):",
            "        nonlocal idxs, brs, mems, anns",
            "        idxs = a; brs = b; mems = c; anns = d",
        ]
    else:
        out.append("    swap = None")
    out += [
        "    def snapshot():",
        '        return {"steps": steps, "annulled": annulled,',
        '                "branches": branches, "taken_branches": taken,',
        '                "jumps": jumps, "loads": loads, "stores": stores,',
        '                "div_by_zero": dbz, "fences": fences,',
        '                "bail_pc": bail_pc, "err": err}',
        "    return drive, swap, snapshot",
    ]
    return "\n".join(out) + "\n", n_bailed


def get_compiled(dec: DecodedProgram, *, record: bool,
                 trace: bool) -> CompiledFunctional:
    """Compile (or fetch the cached) codegen variant of *dec*."""
    key = (bool(record), bool(trace))
    if _SOURCE_TRANSFORM is None:
        hit = dec._compiled.get(key)
        if hit is not None:
            return hit
    src, n_bailed = generate_source(dec, record=record, trace=trace)
    if _SOURCE_TRANSFORM is not None:
        src = _SOURCE_TRANSFORM(src)
    tag = ("r" if record else "") + ("t" if trace else "s")
    code = compile(src, f"<fastsim:{dec.prog.name}:{tag}>", "exec")
    compiled = CompiledFunctional(src, code, n_bailed, record, trace)
    if _SOURCE_TRANSFORM is None:
        dec._compiled[key] = compiled
    return compiled
