"""Cross-backend conformance checks built on :mod:`repro.robust.diffcheck`.

The robustness layer already knows how to compare two executions of "the
same program" architecturally (final memory image, halt behavior,
registers) and report divergences as a structured
:class:`~repro.robust.diffcheck.DiffReport`.  This module points that
machinery *across backends*: the same program, the same inputs, once on
the reference interpreter and once on the generated-step executor.

Two granularities:

* :func:`crosscheck` — functional execution only: final architectural
  state, the full :class:`~repro.sim.functional.ExecStats` payload
  (every counter and branch-outcome vector), and per-instruction
  execution counts must match field for field.
* :func:`crosscheck_cell` — one full evaluation cell (functional +
  timing under a machine config): the ``SimStats`` and ``ExecStats``
  serde dicts must be equal — the exact payload-equality contract the
  engine's cache and the conformance suite assert.

Both run the *raw* fast path (no transparent reference fallback), so a
fastsim bug shows up as a divergence here instead of being silently
repaired by :func:`repro.fastsim.backend.simulate`.
"""

from __future__ import annotations

from typing import Optional

from ..isa.program import Program
from ..robust.diffcheck import DiffReport, _compare_outcomes
from ..sim.config import MachineConfig
from ..sim.functional import FunctionalSim
from ..sim.pipeline import TimingSim
from .decode import decode_program
from .functional import FastFunctionalSim
from .timing import FastTimingSim


def _run_one(sim) -> Optional[str]:
    """Run *sim* to halt; returns the failure string, or None when clean."""
    try:
        sim.run()
        return None
    except Exception as exc:  # noqa: BLE001 - classified, not swallowed
        text = str(exc).splitlines()[0] if str(exc) else ""
        return f"{type(exc).__name__}: {text}"


def _dict_mismatches(prefix: str, a: dict, b: dict) -> list[str]:
    out = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out.append(f"{prefix}.{key}: {va!r} != {vb!r}")
    return out


def crosscheck(prog: Program, *, max_steps: int = 20_000_000,
               record_outcomes: bool = True) -> DiffReport:
    """Reference vs fast functional execution of *prog*.

    Equivalent means: identical failure behavior (both clean, or both
    raising the same exception at the same step count), identical
    ``ExecStats`` payloads, identical per-instruction execution counts,
    identical final registers (int, float, cc) and memory image.
    """
    ref = FunctionalSim(prog, max_steps=max_steps,
                        record_outcomes=record_outcomes)
    fast = FastFunctionalSim(prog, max_steps=max_steps,
                             record_outcomes=record_outcomes)
    ref_fail = _run_one(ref)
    fast_fail = _run_one(fast)
    report = DiffReport(True, original_steps=ref.stats.steps,
                        transformed_steps=fast.stats.steps)
    if ref_fail != fast_fail:
        report.equivalent = False
        report.reason = (f"backend failure mismatch: reference "
                         f"{ref_fail!r} vs fast {fast_fail!r}")
        return report

    mism = _dict_mismatches("exec_stats", ref.stats.to_dict(),
                            fast.stats.to_dict())
    if ref.index_counts != fast.index_counts:
        firsts = [i for i, (a, b) in enumerate(
            zip(ref.index_counts, fast.index_counts)) if a != b]
        mism.append(f"index_counts: first diff at pc={firsts[0]}"
                    if firsts else "index_counts: length differs")
    for name, a, b in (("regs", ref.regs, fast.regs),
                       ("fregs", ref.fregs, fast.fregs),
                       ("ccregs", ref.ccregs, fast.ccregs)):
        mism.extend(_dict_mismatches(name, a, b))
    if mism:
        report.equivalent = False
        report.mismatches.extend(mism)
    # Memory + halt flag go through the diffcheck comparator itself
    # (FastFunctionalSim exposes the reference state surface).
    _compare_outcomes(ref, fast, (), report)
    if not report.equivalent and not report.reason:
        report.reason = (f"{len(report.mismatches)} backend "
                         f"mismatch(es); first: {report.mismatches[0]}")
    return report


def crosscheck_cell(prog: Program, config: MachineConfig, *,
                    max_steps: int = 20_000_000) -> DiffReport:
    """Reference vs fast full-cell simulation of *prog* under *config*.

    Compares the ``(SimStats, ExecStats)`` pair the engine caches — the
    payload-equality contract of :data:`repro.engine.keys` backend keys.
    """
    def _ref():
        fsim = FunctionalSim(prog, max_steps=max_steps,
                             record_outcomes=False)
        stats = TimingSim(config).run(fsim.trace())
        return stats, fsim.stats

    def _fast():
        dec = decode_program(prog)
        fsim = FastFunctionalSim(prog, max_steps=max_steps,
                                 record_outcomes=False, decoded=dec)
        stats = FastTimingSim(config, decoded=dec).run(fsim.batches())
        return stats, fsim.stats

    ref_pair = fast_pair = None
    ref_fail = fast_fail = None
    try:
        ref_pair = _ref()
    except Exception as exc:  # noqa: BLE001
        ref_fail = f"{type(exc).__name__}: {exc}"
    try:
        fast_pair = _fast()
    except Exception as exc:  # noqa: BLE001
        fast_fail = f"{type(exc).__name__}: {exc}"

    report = DiffReport(True)
    if (ref_fail is None) != (fast_fail is None) or (
            ref_fail is not None and ref_fail != fast_fail):
        report.equivalent = False
        report.reason = (f"backend failure mismatch: reference "
                         f"{ref_fail!r} vs fast {fast_fail!r}")
        return report
    if ref_pair is None:
        return report  # both failed identically: backend-equivalent

    mism = _dict_mismatches("stats", ref_pair[0].to_dict(),
                            fast_pair[0].to_dict())
    mism.extend(_dict_mismatches("exec_stats", ref_pair[1].to_dict(),
                                 fast_pair[1].to_dict()))
    if mism:
        report.equivalent = False
        report.mismatches.extend(mism)
        report.reason = (f"{len(mism)} cell payload mismatch(es); "
                         f"first: {mism[0]}")
    report.original_steps = ref_pair[1].steps
    report.transformed_steps = fast_pair[1].steps
    return report
