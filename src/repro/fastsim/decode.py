"""Decode-once lowering: a program as dense per-PC tables + a block index.

The reference simulators re-inspect :class:`Instruction` objects on every
dynamic step (string compares, ``info`` property lookups, dict-keyed
register reads).  :func:`decode_program` does that inspection exactly once
per static instruction, producing :class:`DecodedProgram` — flat lists
indexed by PC — shared by both fast simulators:

* the functional codegen (:mod:`repro.fastsim.codegen`) consumes the
  block index and per-PC operands to emit one Python function per basic
  block;
* the fast timing model (:mod:`repro.fastsim.timing`) consumes the
  pre-resolved queue/unit/latency/dependence tables so its per-cycle
  loop touches only ints and tuples.

Registers are mapped into one flat id space so the timing model's rename
and dependence state can live in a single 72-slot list::

    r0..r31 -> 0..31      f0..f31 -> 32..63      cc0..cc7 -> 64..71

Block structure follows the functional executor's control flow: a block
ends after a conditional branch, a jump (``j``/``jal``/``jr``/``jalr``)
or ``halt``; ``fence`` is *not* a terminator (it only constrains the
timing model).  Every branch target, label and fall-through position is
a block leader, so the only mid-block entries a ``jr`` can produce come
from genuinely odd programs — those bail to the reference interpreter.

Decoded tables are cached per program *identity* (``id`` + weakref, the
Program dataclass is unhashable) and carry a staleness signature
(instruction count + label layout) so a table decoded from a program
that was later mutated in place is rejected instead of mis-executed —
see ``fastsim-stale-block-index`` in :mod:`repro.fastsim.faults`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Optional

from ..isa.opcodes import Unit
from ..isa.program import Program

#: Per-PC flag bits (``DecodedProgram.flags``).
F_BRANCH = 1       # conditional branch (incl. branch-likely)
F_LIKELY = 2
F_JUMP = 4         # any jump: j/jal/jr/jalr
F_JRJALR = 8       # register-target jump
F_FENCE = 16
F_MEM = 32         # load or store
F_HALT = 64
F_UNMODELED = 128  # Unit.NONE op the timing model does not admit
F_GUARDED = 256

#: Reservation-queue ids, mirroring ``pipeline._QUEUE_OF_UNIT`` order.
QUEUE_NAMES = ("alu", "ldst", "fp", "br")
#: Functional-unit ids, mirroring ``pipeline._UNIT_NAME`` order.
UNIT_NAMES = ("alu", "sft", "ldst", "br", "fpadd", "fpmul", "fpdiv")

_QUEUE_ID = {
    Unit.ALU: 0, Unit.SHIFT: 0, Unit.NONE: 0,
    Unit.MEM: 1,
    Unit.FPADD: 2, Unit.FPMUL: 2, Unit.FPDIV: 2,
    Unit.BRANCH: 3,
}
_UNIT_ID = {
    Unit.ALU: 0, Unit.NONE: 0,   # NONE ops occupy an ALU slot (reference)
    Unit.SHIFT: 1,
    Unit.MEM: 2,
    Unit.BRANCH: 3,
    Unit.FPADD: 4, Unit.FPMUL: 5, Unit.FPDIV: 6,
}

#: ``Unit.NONE`` opcodes the cycle model explicitly handles (keep in sync
#: with ``pipeline._MODELED_NONE_OPS``).
_MODELED_NONE_OPS = frozenset(("nop", "halt", "fence"))


class DecodeError(ValueError):
    """The program cannot be lowered (odd operands, unknown registers)."""


def reg_id(name: str) -> int:
    """Flat register id: r0..r31 -> 0..31, f -> 32..63, cc -> 64..71."""
    try:
        if name[0] == "r":
            i = int(name[1:])
            if 0 <= i < 32:
                return i
        elif name[0] == "f":
            i = int(name[1:])
            if 0 <= i < 32:
                return 32 + i
        elif name[0] == "c" and name[1] == "c":
            i = int(name[2:])
            if 0 <= i < 8:
                return 64 + i
    except (ValueError, IndexError):
        pass
    raise DecodeError(f"unknown register {name!r}")


@dataclass
class DecodedProgram:
    """Dense per-PC operand tables + basic-block index for one program."""

    prog: Program
    n: int
    #: staleness signature: (len(instructions), sorted label layout)
    nlabels: int
    labels_sig: tuple
    ops: list[str]
    flags: list[int]
    targets: list[int]                    # resolved target index, -1 if none
    queue_ids: list[int]
    unit_ids: list[int]
    lat_classes: list[str]
    use_ids: list[tuple]                  # register-id tuple per PC
    def_ids: list[int]                    # flat id of the renamed def, -1
    rename_ids: list[int]                 # 0 none / 1 int / 2 fp
    guards: list[Optional[tuple]]         # (cc index 0..7, sense) or None
    blocks: list[tuple]                   # (start, end_exclusive) per block
    block_at: list[int]                   # pc -> block id (leaders), else -1
    #: per-PC target map in FunctionalSim._targets form (slow-path seeding)
    targets_map: dict = field(default_factory=dict)
    #: compiled codegen variants, keyed (record_outcomes, trace)
    _compiled: dict = field(default_factory=dict, repr=False)
    #: timing metadata per machine config, keyed (cache_line, latencies)
    _timing_meta: dict = field(default_factory=dict, repr=False)

    def check_stale(self, prog: Program) -> None:
        """Reject tables decoded from a since-mutated program."""
        if (prog is not self.prog
                or len(prog.instructions) != self.n
                or len(prog.labels) != self.nlabels
                or tuple(sorted(prog.labels.items())) != self.labels_sig):
            raise DecodeError(
                f"stale decode tables for program {prog.name!r}: "
                f"{self.n} decoded instructions / {self.nlabels} labels vs "
                f"{len(prog.instructions)} / {len(prog.labels)} now")

    def timing_meta(self, cfg) -> tuple:
        """Per-config tables for the timing loop.

        Returns ``(lats, dmeta)``: resolved latency per PC, and one
        dispatch tuple per PC — ``(flags, icache line, queue id, rename
        class, unit id, def id, use ids)`` — so dispatch does a single
        indexed load + unpack instead of seven table lookups.
        """
        key = (cfg.cache_line, cfg.latencies)
        hit = self._timing_meta.get(key)
        if hit is None:
            shift = cfg.cache_line.bit_length() - 1
            lats = [cfg.latencies.of_class(c) for c in self.lat_classes]
            dmeta = [
                (self.flags[pc], (pc * 4) >> shift, self.queue_ids[pc],
                 self.rename_ids[pc], self.unit_ids[pc], self.def_ids[pc],
                 self.use_ids[pc])
                for pc in range(self.n)]
            hit = self._timing_meta[key] = (lats, dmeta)
        return hit


def _decode(prog: Program) -> DecodedProgram:
    instrs = prog.instructions
    n = len(instrs)
    if n == 0:
        raise DecodeError("cannot decode an empty program")
    ops, flags, targets = [], [], []
    queue_ids, unit_ids, lat_classes = [], [], []
    use_ids, def_ids, rename_ids, guards = [], [], [], []
    targets_map: dict[int, int] = {}
    leaders = {0}
    for pc, ins in enumerate(instrs):
        info = ins.info
        op = ins.op
        fl = 0
        if info.is_branch:
            fl |= F_BRANCH
            if info.is_likely:
                fl |= F_LIKELY
        if info.is_jump:
            fl |= F_JUMP
            if op in ("jr", "jalr"):
                fl |= F_JRJALR
        if info.is_fence:
            fl |= F_FENCE
        if info.is_load or info.is_store:
            fl |= F_MEM
        if info.is_halt:
            fl |= F_HALT
        if info.unit is Unit.NONE and op not in _MODELED_NONE_OPS:
            fl |= F_UNMODELED
        if ins.guard is not None:
            fl |= F_GUARDED
            gid = reg_id(ins.guard.reg)
            if gid < 64:
                raise DecodeError(f"guard on non-cc register at pc={pc}")
            guards.append((gid - 64, bool(ins.guard.sense)))
        else:
            guards.append(None)
        tgt = -1
        if ins.target is not None:
            tgt = prog.target_index(ins.target)
            targets_map[pc] = tgt
        dest = ins.dest
        rid = 0
        if dest is not None and dest != "r0":
            if dest[0] == "r":
                rid = 1
            elif dest[0] == "f":
                rid = 2
        defs = ins.defs()
        ops.append(op)
        flags.append(fl)
        targets.append(tgt)
        queue_ids.append(_QUEUE_ID[info.unit])
        unit_ids.append(_UNIT_ID[info.unit])
        lat_classes.append(info.latency_class)
        use_ids.append(tuple(reg_id(r) for r in ins.uses()))
        def_ids.append(reg_id(defs[0]) if defs else -1)
        rename_ids.append(rid)
        if fl & (F_BRANCH | F_JUMP | F_HALT):
            leaders.add(pc + 1)
            if tgt >= 0:
                leaders.add(tgt)
    for idx in prog.labels.values():
        leaders.add(idx)
    starts = sorted(x for x in leaders if 0 <= x < n)
    blocks: list[tuple] = []
    block_at = [-1] * n
    bounds = starts + [n]
    for bid, start in enumerate(starts):
        blocks.append((start, bounds[bid + 1]))
        block_at[start] = bid
    return DecodedProgram(
        prog=prog, n=n, nlabels=len(prog.labels),
        labels_sig=tuple(sorted(prog.labels.items())),
        ops=ops, flags=flags, targets=targets,
        queue_ids=queue_ids, unit_ids=unit_ids, lat_classes=lat_classes,
        use_ids=use_ids, def_ids=def_ids, rename_ids=rename_ids,
        guards=guards, blocks=blocks, block_at=block_at,
        targets_map=targets_map)


#: id -> (weakref to program, decoded tables).  Keyed by identity because
#: the Program dataclass defines __eq__ without __hash__; the weakref
#: callback evicts the slot when the program is collected, so a recycled
#: id can never alias a dead program's tables.
_DECODE_CACHE: dict = {}


def decode_program(prog: Program) -> DecodedProgram:
    """Decode *prog* (cached per identity; staleness-checked)."""
    key = id(prog)
    hit = _DECODE_CACHE.get(key)
    if hit is not None:
        ref, dec = hit
        if ref() is prog:
            try:
                dec.check_stale(prog)
                return dec
            except DecodeError:
                pass  # program mutated in place: re-decode
    dec = _decode(prog)

    # Bind the dict itself: at interpreter shutdown the module global may
    # already be None when the weakref callback fires.
    def _evict(_r, _key=key, _cache=_DECODE_CACHE):
        _cache.pop(_key, None)

    _DECODE_CACHE[key] = (weakref.ref(prog, _evict), dec)
    return dec
