"""Fast simulator backends: decode-once lowering + specialized-step codegen.

The reference simulators (:mod:`repro.sim.functional`,
:mod:`repro.sim.pipeline`) interpret one :class:`Instruction` object per
dynamic step — string opcode dispatch, dict-keyed register files, one
method call per trace entry.  That is the right shape for a readable
model and exactly the wrong shape for sweep/fuzz/serve throughput, where
the artifact cache is cold by construction.

This package adds a second, *semantically identical* execution path:

* :mod:`repro.fastsim.decode` — a decode-once pass lowering a program to
  dense per-PC operand tables plus a basic-block index, shared by both
  fast simulators;
* :mod:`repro.fastsim.codegen` — ``exec``-compiles one straight-line
  Python function per basic block (superblock dispatch: fall through
  inside a block, branch logic only at block ends);
* :mod:`repro.fastsim.functional` — :class:`FastFunctionalSim`, the
  generated-step functional executor producing the same
  :class:`~repro.sim.functional.ExecStats` and a batched trace stream;
* :mod:`repro.fastsim.timing` — :class:`FastTimingSim`, a batched-event
  restructuring of the per-cycle loop that skips cycles with no pipeline
  activity (mispredict recovery, fence drains, icache refills, the final
  ROB drain);
* :mod:`repro.fastsim.backend` — backend selection (``"reference"`` /
  ``"fast"``, ``REPRO_BACKEND`` env var) and the contained entry point
  used by :mod:`repro.engine.cells`: internal fastsim faults fall back
  to the reference interpreter and record a decision trail, while
  program-semantic failures propagate byte-identically;
* :mod:`repro.fastsim.check` — cross-backend diffcheck helpers built on
  :mod:`repro.robust.diffcheck`.

Equality contract: for any program and any machine config, the fast
backend produces ``SimStats``/``ExecStats`` payloads whose serde dicts
equal the reference backend's — enforced by ``tests/fastsim``.
"""

from .backend import (BACKENDS, DEFAULT_BACKEND, ENV_BACKEND, FastsimError,
                      fallback_trail, resolve_backend, simulate)
from .check import crosscheck, crosscheck_cell
from .decode import DecodedProgram, decode_program
from .functional import FastFunctionalSim
from .timing import FastTimingSim

__all__ = [
    "BACKENDS", "DEFAULT_BACKEND", "ENV_BACKEND", "FastsimError",
    "DecodedProgram", "decode_program", "FastFunctionalSim",
    "FastTimingSim", "resolve_backend", "simulate", "fallback_trail",
    "crosscheck", "crosscheck_cell",
]
