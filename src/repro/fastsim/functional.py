"""FastFunctionalSim: generated-step functional execution.

Drives the exec-compiled block functions from
:mod:`repro.fastsim.codegen` and exposes the same observable surface as
:class:`repro.sim.functional.FunctionalSim`:

* :meth:`run` → the same :class:`ExecStats` (every counter, branch
  outcome vector and ``branch_pc`` map byte-identical);
* :attr:`regs` / :attr:`fregs` / :attr:`ccregs` / :attr:`pc` /
  :attr:`index_counts` / :attr:`mem` for final-state comparison;
* :meth:`batches` — the trace stream, batched: instead of one
  ``TraceEntry`` object per step it yields ``(idxs, brs, mems, anns)``
  tuples (pc per step, taken flag per non-annulled branch, address per
  non-annulled memory op, absolute step index per annulled step), which
  is everything the timing model consumes.

Exactness around the edges:

* **Exceptions** raised by generated code (alignment faults, ``cvtfi``
  of nan/inf, ``swf`` pack errors) are repaired to the reference
  coordinates: the codegen stamps ``err = (pc, offset, blocklen, bid)``
  before every raising call, and :meth:`_drive` rewinds the partially
  executed block so ``self.pc``, ``stats.steps`` and ``index_counts``
  match what the reference interpreter would report, then re-raises.
* **Bail-out** paths — step-budget expiry mid-block, a ``jr`` into the
  middle of a block, a pc walking off a block boundary out of range, or
  a block the emitter refused to specialize (unknown opcode, odd
  operands) — hand off to a real :class:`FunctionalSim` seeded with the
  current architectural state *sharing this sim's Memory and ExecStats
  objects*, so ``StepBudgetExceeded`` / ``SimulationDiverged`` /
  ``UnmodeledOpcode`` are raised by the original code paths with
  identical messages and coordinates.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from ..isa.program import Program
from ..sim.functional import ExecStats, FunctionalSim
from ..sim.memory import AlignmentError, Memory
from .codegen import get_compiled
from .decode import DecodedProgram, decode_program

#: Trace entries buffered per yielded batch.
FLUSH = 16384

#: Exception types the codegen marks with an ``err`` stamp; anything
#: else escaping generated code is an internal bug and propagates raw.
_REPAIRABLE = (AlignmentError, ValueError, OverflowError, struct.error)


class FastFunctionalSim:
    """Drop-in functional executor backed by per-block compiled code."""

    def __init__(self, prog: Program, max_steps: int = 20_000_000,
                 record_outcomes: bool = True,
                 decoded: Optional[DecodedProgram] = None):
        prog.validate()
        self.prog = prog
        self.max_steps = max_steps
        self.record_outcomes = record_outcomes
        self.decoded = decoded if decoded is not None else \
            decode_program(prog)
        self.decoded.check_stale(prog)
        self.mem = Memory()
        self.mem.load_image(prog.data_image)
        for addr, label in prog.code_refs.items():
            self.mem.write_word(addr, prog.target_index(label))
        self._R = [0] * 32
        self._R[29] = 0x7FFF_FF00
        self._F = [0.0] * 32
        self._C = [False] * 8
        self.pc = 0
        self.stats = ExecStats()
        self._bcounts = [0] * len(self.decoded.blocks)
        #: (first_pc, last_pc) of a partially executed block, from
        #: exception repair; folded into index_counts.
        self._partial: Optional[tuple] = None
        #: reference sub-simulator, once a bail-out handed off to it
        self._slow: Optional[FunctionalSim] = None

    # -- public API ----------------------------------------------------------

    def run(self) -> ExecStats:
        """Execute until halt; returns statistics."""
        for _ in self._drive(trace=False):
            pass
        return self.stats

    def batches(self) -> Iterator[tuple]:
        """Yield (idxs, brs, mems, anns) batches until halt."""
        return self._drive(trace=True)

    # -- state views (reference-shaped) --------------------------------------

    @property
    def regs(self) -> dict:
        if self._slow is not None:
            return self._slow.regs
        return {f"r{i}": self._R[i] for i in range(32)}

    @property
    def fregs(self) -> dict:
        if self._slow is not None:
            return self._slow.fregs
        return {f"f{i}": self._F[i] for i in range(32)}

    @property
    def ccregs(self) -> dict:
        if self._slow is not None:
            return self._slow.ccregs
        return {f"cc{i}": self._C[i] for i in range(8)}

    @property
    def index_counts(self) -> list:
        if self._slow is not None:
            return self._slow.index_counts
        return self._expand_counts()

    def _expand_counts(self) -> list:
        counts = [0] * self.decoded.n
        for bid, (s, e) in enumerate(self.decoded.blocks):
            c = self._bcounts[bid]
            if c:
                for pc in range(s, e):
                    counts[pc] += c
        if self._partial is not None:
            first, last = self._partial
            for pc in range(first, last + 1):
                counts[pc] += 1
        return counts

    # -- the drive loop ------------------------------------------------------

    def _drive(self, trace: bool) -> Iterator[tuple]:
        dec = self.decoded
        compiled = get_compiled(dec, record=self.record_outcomes,
                                trace=trace)
        ns: dict = {}
        exec(compiled.code, ns)
        idxs: list = []
        brs: list = []
        mems: list = []
        anns: list = []
        ctx = {
            "mem": self.mem, "unpack": struct.unpack, "pack": struct.pack,
            "U32": struct.Struct("<I").unpack_from,
            "P32": struct.Struct("<I").pack,
            "R": self._R, "F": self._F, "C": self._C,
            "bcounts": self._bcounts,
            "BO": self.stats.branch_outcomes, "BP": self.stats.branch_pc,
            "block_at": dec.block_at, "max_steps": self.max_steps,
            "lens": [e - s for s, e in dec.blocks],
            "starts": [s for s, _ in dec.blocks],
            "flush": FLUSH,
            "idxs": idxs, "brs": brs, "mems": mems, "anns": anns,
        }
        drive, swap, snapshot = ns["_make"](ctx)
        while True:
            try:
                rc = drive()
            except BaseException as exc:
                snap = snapshot()
                err = snap["err"]
                if err is not None and isinstance(exc, _REPAIRABLE):
                    pc, k, blocklen, bid = err
                    snap["steps"] += k
                    self._absorb(snap)
                    self._bcounts[bid] -= 1
                    self._partial = (pc - k, pc)
                    self.pc = pc
                    if trace:
                        # block pcs were pre-extended; entries from the
                        # raising instruction on were never yielded by
                        # the reference either
                        del idxs[len(idxs) - (blocklen - k):]
                        if idxs:
                            yield (idxs, brs, mems, anns)
                else:
                    self._absorb(snap)
                raise
            if rc == 1:          # batch full (trace mode only)
                yield (idxs, brs, mems, anns)
                idxs, brs, mems, anns = [], [], [], []
                swap(idxs, brs, mems, anns)
                continue
            snap = snapshot()
            self._absorb(snap)
            if rc == 0:          # halt
                self.stats.halted = True
                self.pc = snap["bail_pc"]
                if trace and idxs:
                    yield (idxs, brs, mems, anns)
                return
            # rc == 2 (step budget) or rc == 3 (interpreter bail): the
            # reference takes over at bail_pc and raises/halts exactly
            # as it always did.
            yield from self._slow_drive(snap["bail_pc"], trace,
                                        idxs, brs, mems, anns)
            return

    def _absorb(self, snap: dict) -> None:
        st = self.stats
        st.steps = snap["steps"]
        st.annulled = snap["annulled"]
        st.branches = snap["branches"]
        st.taken_branches = snap["taken_branches"]
        st.jumps = snap["jumps"]
        st.loads = snap["loads"]
        st.stores = snap["stores"]
        st.div_by_zero = snap["div_by_zero"]
        st.fences = snap["fences"]

    # -- reference hand-off --------------------------------------------------

    def _make_slow(self, start_pc: int) -> FunctionalSim:
        sim = FunctionalSim.__new__(FunctionalSim)
        sim.prog = self.prog
        sim.max_steps = self.max_steps
        sim.record_outcomes = self.record_outcomes
        sim.mem = self.mem                      # shared: no copy
        sim.regs = {f"r{i}": self._R[i] for i in range(32)}
        sim.fregs = {f"f{i}": self._F[i] for i in range(32)}
        sim.ccregs = {f"cc{i}": self._C[i] for i in range(8)}
        sim.pc = start_pc
        sim.stats = self.stats                  # shared: counters continue
        sim.index_counts = self._expand_counts()
        sim._targets = dict(self.decoded.targets_map)
        return sim

    def _slow_drive(self, start_pc: int, trace: bool, idxs: list,
                    brs: list, mems: list, anns: list) -> Iterator[tuple]:
        sim = self._make_slow(start_pc)
        self._slow = sim
        stats = sim.stats
        it = sim.trace()
        while True:
            try:
                entry = next(it)
            except StopIteration:
                break
            except BaseException:
                self.pc = sim.pc
                if trace and idxs:
                    yield (idxs, brs, mems, anns)
                raise
            if not trace:
                continue
            idxs.append(entry.index)
            if entry.annulled:
                anns.append(stats.steps - 1)
            else:
                if entry.taken is not None:
                    brs.append(entry.taken)
                if entry.addr is not None:
                    mems.append(entry.addr)
            if len(idxs) >= FLUSH:
                yield (idxs, brs, mems, anns)
                idxs, brs, mems, anns = [], [], [], []
        self.pc = sim.pc
        if trace and idxs:
            yield (idxs, brs, mems, anns)
