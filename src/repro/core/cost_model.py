"""Schedule cost estimation — the paper's Figures 2, 3 and 4.

Two layers:

* :class:`DiamondRegion` — the analytic model of a two-arm (if/else)
  acyclic region inside a loop, reproducing the paper's worked example
  exactly: baseline 3100 cycles, speculation 2900, guarded execution 3600
  (Figure 2) and the 40 %/20 %/40 % segment-split schedule of 2756 cycles
  (Figures 3/4).
* :func:`weighted_schedule_cost` — the same weighted-schedule estimate
  computed on a *real* CFG with profile frequencies and the local list
  scheduler, used by the Figure 6 algorithm on actual programs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..cfg.graph import CFG
from ..sched.list_scheduler import schedule_length
from ..sched.machine_model import DEFAULT_MODEL, MachineModel


@dataclass(frozen=True)
class DiamondRegion:
    """An if/else diamond B1 -> {B2, B3} -> B4 executed ``iterations`` times.

    Lengths are local schedule lengths in cycles; ``p_b2`` is the
    probability of the B2 arm; ``vacant_b1`` is the number of empty issue
    slots in B1's schedule available for speculated operations.

    The paper's Figure 2 instance:

    >>> d = PAPER_FIG2
    >>> d.baseline_cost()
    3100.0
    >>> d.guarded_cost()
    3600.0
    >>> d.speculate_balanced(2)
    2900.0
    """

    b1: float
    b2: float
    b3: float
    b4: float
    p_b2: float
    vacant_b1: int
    iterations: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_b2 <= 1.0:
            raise ValueError("p_b2 must be a probability")
        if self.vacant_b1 < 0 or self.iterations < 0:
            raise ValueError("vacant_b1 and iterations must be non-negative")

    # -- per-iteration costs ------------------------------------------------------

    def per_iter_baseline(self) -> float:
        """Weighted acyclic schedule: b1 + p*b2 + (1-p)*b3 + b4."""
        return self.b1 + self.p_b2 * self.b2 + (1 - self.p_b2) * self.b3 + self.b4

    def per_iter_balanced(self, k: int) -> float:
        """Speculate *k* ops from EACH arm into B1's vacant slots; the 2k
        vacated arm slots absorb 2k operations copied down from B4, whose
        schedule shrinks by k cycles (one ld/st-free cycle per op pair in
        the paper's example).  Arm lengths are unchanged.
        """
        if 2 * k > self.vacant_b1:
            raise ValueError(f"needs {2 * k} vacant slots, have {self.vacant_b1}")
        return (self.b1 + self.p_b2 * self.b2 + (1 - self.p_b2) * self.b3
                + max(0.0, self.b4 - k))

    def per_iter_biased(self, favor_b2: bool, k: int) -> float:
        """Speculate *k* ops from the favored arm into B1; copy *k* ops
        from B4 into both arms.  The favored arm's vacated slots absorb its
        copies (length unchanged); the unfavored arm grows by k; B4 shrinks
        by k (paper Figure 3(a)/(c)).
        """
        if k > self.vacant_b1:
            raise ValueError(f"needs {k} vacant slots, have {self.vacant_b1}")
        if favor_b2:
            b2, b3 = self.b2, self.b3 + k
        else:
            b2, b3 = self.b2 + k, self.b3
        return (self.b1 + self.p_b2 * b2 + (1 - self.p_b2) * b3
                + max(0.0, self.b4 - k))

    def per_iter_guarded(self) -> float:
        """If-convert the diamond: both arms execute every iteration,
        serialized, with B1's vacant slots absorbing that many guarded
        operations (paper Figure 2(d): 10 + (13 + 5 - 4) + 12).
        """
        return self.b1 + max(0.0, self.b2 + self.b3 - self.vacant_b1) + self.b4

    # -- whole-loop costs ---------------------------------------------------------

    def baseline_cost(self) -> float:
        return self.iterations * self.per_iter_baseline()

    def guarded_cost(self) -> float:
        return self.iterations * self.per_iter_guarded()

    def speculate_balanced(self, k: int) -> float:
        return self.iterations * self.per_iter_balanced(k)

    def speculate_biased(self, favor_b2: bool, k: int) -> float:
        return self.iterations * self.per_iter_biased(favor_b2, k)

    def best_one_time_cost(self, k: int) -> float:
        """The best a one-time feedback metric can do: pick one strategy
        for the entire iteration space."""
        options = [self.baseline_cost(), self.guarded_cost()]
        if 2 * k <= self.vacant_b1:
            options.append(self.speculate_balanced(k))
        if k <= self.vacant_b1:
            options.append(self.speculate_biased(True, k))
            options.append(self.speculate_biased(False, k))
        return min(options)


@dataclass(frozen=True)
class SegmentPlan:
    """One iteration-space segment of a split-branch plan.

    ``fraction`` — share of the loop's iterations; ``p_b2`` — the branch
    bias inside this segment; ``strategy`` — one of ``"balanced"``,
    ``"favor_b2"``, ``"favor_b3"``, ``"baseline"``, ``"guarded"``;
    ``k`` — operations moved for speculation strategies.
    """

    fraction: float
    p_b2: float
    strategy: str
    k: int = 0


def split_cost(region: DiamondRegion, plan: Sequence[SegmentPlan],
               overhead_per_iter: float = 0.0) -> float:
    """Cost of the paper's split-branch scheme (Figure 4): each segment
    runs its own specialized schedule, weighted by its fraction of the
    iteration space, plus any per-iteration instrumentation overhead
    (counter increment + split predicates; zero in the paper's idealized
    arithmetic).
    """
    total_fraction = sum(s.fraction for s in plan)
    if abs(total_fraction - 1.0) > 1e-9:
        raise ValueError(f"segment fractions sum to {total_fraction}, not 1")
    cost = 0.0
    for seg in plan:
        r = replace(region, p_b2=seg.p_b2)
        if seg.strategy == "balanced":
            per = r.per_iter_balanced(seg.k)
        elif seg.strategy == "favor_b2":
            per = r.per_iter_biased(True, seg.k)
        elif seg.strategy == "favor_b3":
            per = r.per_iter_biased(False, seg.k)
        elif seg.strategy == "baseline":
            per = r.per_iter_baseline()
        elif seg.strategy == "guarded":
            per = r.per_iter_guarded()
        else:
            raise ValueError(f"unknown strategy {seg.strategy!r}")
        cost += seg.fraction * region.iterations * (per + overhead_per_iter)
    return cost


#: The exact instance of the paper's Figure 2: schedule lengths 10/13/5/12,
#: equal arm probabilities, four vacant slots in B1, 100 loop iterations.
PAPER_FIG2 = DiamondRegion(b1=10, b2=13, b3=5, b4=12, p_b2=0.5,
                           vacant_b1=4, iterations=100)

#: The paper's Figure 3/4 split plan: first 40% of iterations favor the B3
#: arm (95/5), the middle 20% toggle (50/50, balanced speculation), the
#: final 40% favor B2 (95/5).
PAPER_FIG4_PLAN = (
    SegmentPlan(fraction=0.4, p_b2=0.05, strategy="favor_b3", k=4),
    SegmentPlan(fraction=0.2, p_b2=0.5, strategy="balanced", k=2),
    SegmentPlan(fraction=0.4, p_b2=0.95, strategy="favor_b2", k=4),
)


def paper_fig4_cost() -> float:
    """The paper's Figure 4 result: 2756 cycles."""
    return split_cost(PAPER_FIG2, PAPER_FIG4_PLAN)


# ---------------------------------------------------------------------------
# Real-CFG cost estimation (used by the Figure 6 algorithm on programs)
# ---------------------------------------------------------------------------


def weighted_schedule_cost(cfg: CFG, model: MachineModel = DEFAULT_MODEL,
                           blocks: Optional[Sequence[int]] = None) -> float:
    """Sum over blocks of ``freq(block) * local_schedule_length(block)``.

    Frequencies must already be annotated (e.g. via
    :meth:`repro.profilefb.ProfileDB.annotate`).  Restrict to *blocks* (ids)
    to cost one region, e.g. a loop body.
    """
    ids = set(blocks) if blocks is not None else None
    total = 0.0
    for bb in cfg.blocks:
        if ids is not None and bb.bid not in ids:
            continue
        if not bb.instructions or bb.freq <= 0:
            continue
        total += bb.freq * schedule_length(bb.instructions, model)
    return total


def diamond_from_cfg(cfg: CFG, head: int, model: MachineModel = DEFAULT_MODEL,
                     iterations: Optional[float] = None) -> Optional[DiamondRegion]:
    """Extract a :class:`DiamondRegion` rooted at block *head* if the CFG
    has the B1 -> {B2, B3} -> B4 shape there; returns None otherwise.

    Edge frequencies supply ``p_b2``; the head's local schedule supplies
    the vacant-slot count.
    """
    from ..sched.list_scheduler import list_schedule

    succs = cfg.succs(head)
    if len(succs) != 2:
        return None
    a, b = succs
    join: Optional[int] = None
    # Full diamond: both arms reach a common join.
    ja = [s for s in cfg.succs(a) if s != head]
    jb = [s for s in cfg.succs(b) if s != head]
    if len(ja) == 1 and len(jb) == 1 and ja == jb:
        join = ja[0]
    elif cfg.succs(a) == [b]:
        join = b     # triangle: arm a, join b
    elif cfg.succs(b) == [a]:
        join = a     # triangle: arm b, join a
    if join is None:
        return None
    hb = cfg.block(head)
    fall = cfg.fall_edge(head)
    b2_id = fall.dst if fall is not None else a
    b3_id = b if b2_id == a else a

    def arm_len(bid: int) -> float:
        if bid == join:
            return 0.0  # empty triangle arm
        return float(schedule_length(cfg.block(bid).instructions, model))

    total = sum(e.freq for e in cfg.succ_edges[head])
    p_b2 = (cfg.edge(head, b2_id).freq / total) if total else 0.5
    sched = list_schedule(hb.instructions, model)
    return DiamondRegion(
        b1=float(sched.length),
        b2=arm_len(b2_id),
        b3=arm_len(b3_id),
        b4=float(schedule_length(cfg.block(join).instructions, model)),
        p_b2=p_b2,
        vacant_b1=sched.vacant_slots(model),
        iterations=float(iterations if iterations is not None else hb.freq),
    )
