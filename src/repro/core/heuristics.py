"""Feedback heuristics: the tunable knobs of the Figure 6 algorithm.

The paper's thesis is that feedback metrics should be *designed*, not just
consumed: a one-time average hides structure that per-segment metrics
expose.  :class:`FeedbackHeuristics` bundles every threshold the decision
procedure uses, so ablation benchmarks can sweep them
(``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..profilefb.bitvector import BranchHistory
from ..profilefb.classify import ClassifyConfig


@dataclass(frozen=True)
class ParamBound:
    """Inclusive tuning range of one heuristic knob (see :mod:`repro.tune`).

    ``kind`` is ``"float"``, ``"int"``, or ``"choice"``; choice parameters
    carry their admissible values in ``choices`` (``lo``/``hi`` unused).
    """

    lo: float = 0.0
    hi: float = 0.0
    kind: str = "float"
    choices: tuple = ()

    def clamp(self, value):
        """*value* forced into the bound (and onto the int grid)."""
        if self.kind == "choice":
            return value if value in self.choices else self.choices[0]
        v = min(max(value, self.lo), self.hi)
        return int(round(v)) if self.kind == "int" else float(v)

    def contains(self, value) -> bool:
        """True when *value* is admissible under this bound."""
        if self.kind == "choice":
            return value in self.choices
        if self.kind == "int" and value != int(value):
            return False
        return self.lo <= value <= self.hi


@dataclass(frozen=True)
class FeedbackHeuristics:
    """All knobs of the proposed compilation scheme."""

    classify: ClassifyConfig = field(default_factory=ClassifyConfig)

    # Feature toggles (for the individual/combined ablations of the title).
    enable_likely: bool = True
    enable_ifconvert: bool = True
    enable_split: bool = True
    enable_speculation: bool = True

    #: codegen style for branch splitting ("sectioned" per Figure 5, or the
    #: literal "inline" Figure 7(b) form)
    split_style: str = "sectioned"

    #: cycles charged per misprediction when estimating split benefit
    #: (resolution depth + recovery on the R10000-like pipeline)
    mispredict_penalty: float = 4.0
    #: cycles charged per *correctly predicted* execution when a branch is
    #: if-converted: guarding turns the control dependence into a data
    #: dependence on the predicate, so the guarded ops wait for the compare
    #: where a predicted branch would have let them issue immediately
    guard_dependence_penalty: float = 0.5
    #: per-iteration instrumentation overhead of a split loop (counter
    #: increment + predicate evaluation in the latch)
    split_overhead_per_iter: float = 1.0
    #: minimum dynamic executions before a branch is worth transforming
    min_executions: int = 16
    #: minimum estimated cycle gain before a transform is applied
    min_gain: float = 0.0

    # Branch-melding knobs (the melded scheme; see repro.transform.meld).
    #: replace if-conversion with branch melding: both diamond arms run
    #: unconditionally into scratch registers and native conditional
    #: moves (cmovt/cmovf) select the surviving values — no guarded ops
    enable_meld: bool = False
    #: largest arm (non-control instructions) the melder will flatten
    meld_max_arm_ops: int = 4

    # Region-scheduler knobs.
    speculation_bias: float = 0.65
    max_moves_per_block: int = 4

    # Speculative-safety knobs (the safe-speculative scheme; see
    # repro.robust.spectre).  All of these flow into engine cache keys
    # automatically because FeedbackHeuristics is canonicalized field by
    # field (repro.engine.keys.canonical).
    #: gate flagged hoists through the spectre analysis
    spectre_safe: bool = False
    #: speculative-execution window the analysis walks (instructions)
    spectre_sew: int = 16
    #: True: plant a fence before flagged hoists; False: refuse them
    spectre_fence: bool = True
    #: registers treated as attacker-controlled at program entry
    spectre_untrusted: tuple[str, ...] = ("r4", "r5", "r6", "r7")


DEFAULT_HEURISTICS = FeedbackHeuristics()

#: Bounded-parameter metadata of every knob the closed-loop search
#: (:mod:`repro.tune`) may vary.  Dotted ``classify.<field>`` names reach
#: into the nested :class:`~repro.profilefb.classify.ClassifyConfig`;
#: plain names are :class:`FeedbackHeuristics` fields.  The paper's
#: global Figure 6 values (0.95 likely / 0.65 bias / ...) all sit inside
#: their bounds, so the default vector is always a valid candidate.
TUNABLE_PARAMS: dict[str, ParamBound] = {
    "classify.likely_threshold": ParamBound(0.80, 0.999),
    "classify.bias_threshold": ParamBound(0.55, 0.95),
    "classify.monotonic_toggle": ParamBound(0.20, 0.80),
    "classify.segment_bias": ParamBound(0.70, 0.99),
    "classify.window": ParamBound(4, 16, "int"),
    "classify.max_segments": ParamBound(2, 8, "int"),
    "mispredict_penalty": ParamBound(2.0, 8.0),
    "guard_dependence_penalty": ParamBound(0.0, 2.0),
    "split_overhead_per_iter": ParamBound(0.25, 2.0),
    "min_executions": ParamBound(4, 64, "int"),
    "meld_max_arm_ops": ParamBound(1, 8, "int"),
    "min_gain": ParamBound(0.0, 8.0),
    "speculation_bias": ParamBound(0.50, 0.95),
    "max_moves_per_block": ParamBound(1, 8, "int"),
    "split_style": ParamBound(kind="choice",
                              choices=("sectioned", "inline")),
}


def split_benefit_estimate(history: BranchHistory, segments,
                           heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                           ) -> float:
    """Estimated cycles saved by splitting a branch with this history.

    Savings: the 2-bit predictor's mispredictions on the whole history,
    minus the mispredictions left after per-segment specialization (biased
    segments become branch-likelies that only miss at their minority
    outcomes; mixed segments keep the 2-bit scheme, estimated at its
    whole-history rate).  Cost: per-iteration instrumentation overhead.

    This generalizes the diamond arithmetic of Figures 2-4 to arbitrary
    region shapes: when the region is not a clean diamond, prediction
    behavior is the dominating term the split actually changes.
    """
    n = len(history)
    if n == 0:
        return 0.0
    acc_whole = history.prediction_accuracy_2bit()
    misses_before = (1.0 - acc_whole) * n

    misses_after = 0.0
    for seg in segments:
        seg_len = seg.end - seg.start
        if seg.kind == "taken":
            misses_after += (1.0 - seg.freq) * seg_len
        elif seg.kind == "nottaken":
            misses_after += seg.freq * seg_len
        else:
            sub = history[seg.start:seg.end]
            misses_after += (1.0 - sub.prediction_accuracy_2bit()) * seg_len

    saved = (misses_before - misses_after) * heur.mispredict_penalty
    overhead = heur.split_overhead_per_iter * n
    return saved - overhead
