"""The paper's Figure 6 decision algorithm.

::

    for each procedure:
      detect all loops, create loop-list L
      for each branch bj in L:
        if forward branch:
          if branch_frequency(bj) highly probable (>= 0.95):
            generate branch-likely instruction
          else if branch_frequency(bj) >= 0.65:
            if monotonic(bj) and guarded-execution cost (Fig 2(d)) less
               expensive than weighted schedule estimates (Fig 2(b),(c)):
              generate if-converted code
          else if non-monotonic(bj) and instrumentable(bj):
            if cost of instrumented code (Fig 4) less expensive than
               Fig 2(b),(c) and (d):
              generate split-branch code (Fig 5)
        else (backward branch):
          if branch_frequency(bj) highly probable (>= 0.95):
            generate branch-likely instruction

One documented refinement: a *periodic* toggle pattern (e.g. TFTF...)
classifies as instrumentable in the paper, but expressing a modulo counter
per iteration costs more than it saves on our target; such branches are
instead routed to the if-conversion cost check — eliminating an
unpredictable branch is exactly what guarding is for (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cfg.graph import CFG
from ..cfg.loops import LoopForest
from ..profilefb.classify import BranchClass
from ..profilefb.profiledb import ProfileDB
from ..sched.machine_model import DEFAULT_MODEL, MachineModel
from .cost_model import diamond_from_cfg
from .heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics, split_benefit_estimate


@dataclass
class Decision:
    """One per profiled loop branch."""

    block: int
    branch_uid: int
    action: str          # "likely" | "ifconvert" | "split" | "none"
    reason: str
    direction: str       # "forward" | "backward"
    estimated_gain: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (engine artifact-cache payload)."""
        return {"block": self.block, "branch_uid": self.branch_uid,
                "action": self.action, "reason": self.reason,
                "direction": self.direction,
                "estimated_gain": self.estimated_gain}

    @classmethod
    def from_dict(cls, d: dict) -> "Decision":
        """Inverse of :meth:`to_dict`."""
        return cls(block=d["block"], branch_uid=d["branch_uid"],
                   action=d["action"], reason=d["reason"],
                   direction=d["direction"],
                   estimated_gain=d["estimated_gain"])


@dataclass
class DecisionPlan:
    decisions: list[Decision] = field(default_factory=list)

    def by_action(self, action: str) -> list[Decision]:
        return [d for d in self.decisions if d.action == action]

    def summary(self) -> str:
        lines = []
        for d in self.decisions:
            lines.append(f"  block {d.block:<4} {d.direction:<8} -> "
                         f"{d.action:<10} ({d.reason})")
        return "\n".join(lines) or "  (no loop branches)"

    def to_dict(self) -> dict:
        """JSON-serializable form (engine artifact-cache payload).

        Instruction uids are process-local (a module-global counter), so
        raw ``branch_uid`` values would differ between a serial run and a
        worker process.  Serialization therefore *rank-normalizes* them —
        each decision stores the rank of its uid among the plan's uids.
        Ranks are deterministic, order-preserving, and idempotent under
        re-serialization, so cached and freshly-computed payloads are
        byte-identical.
        """
        ranks = {uid: i for i, uid in enumerate(
            sorted({d.branch_uid for d in self.decisions}))}
        recs = []
        for d in self.decisions:
            rec = d.to_dict()
            rec["branch_uid"] = ranks[d.branch_uid]
            recs.append(rec)
        return {"decisions": recs}

    @classmethod
    def from_dict(cls, d: dict) -> "DecisionPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(decisions=[Decision.from_dict(x)
                              for x in d["decisions"]])


def decide(cfg: CFG, forest: LoopForest, profile: ProfileDB,
           heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
           model: MachineModel = DEFAULT_MODEL) -> DecisionPlan:
    """Run the Figure 6 algorithm over every loop branch of the CFG.

    Produces a plan; application order (splits, then if-conversions, then
    the global branch-likely pass) is handled by
    :func:`repro.core.pipeline.compile_proposed`.
    """
    plan = DecisionPlan()
    seen_blocks: set[int] = set()
    likely_threshold = heur.classify.likely_threshold

    for loop in forest.loops:
        for lb in forest.branches(loop):
            if lb.block in seen_blocks:
                continue
            seen_blocks.add(lb.block)
            term = lb.instr
            bp = profile.branch_of(term)
            if bp is None or bp.executions < heur.min_executions:
                plan.decisions.append(Decision(
                    lb.block, term.uid, "none", "no/low profile",
                    lb.direction))
                continue
            cls = bp.classification
            freq = cls.frequency

            # Backward branches: branch-likely only (Figure 6's second arm).
            if lb.direction == "backward":
                if heur.enable_likely and (freq >= likely_threshold
                                           or freq <= 1 - likely_threshold):
                    plan.decisions.append(Decision(
                        lb.block, term.uid, "likely",
                        f"backward, freq={freq:.2f}", lb.direction))
                else:
                    plan.decisions.append(Decision(
                        lb.block, term.uid, "none",
                        f"backward, freq={freq:.2f}", lb.direction))
                continue

            # Forward branches.
            if heur.enable_likely and cls.wants_likely:
                plan.decisions.append(Decision(
                    lb.block, term.uid, "likely",
                    f"highly probable, freq={freq:.2f}", lb.direction))
                continue

            split_rejected = ""
            if cls.branch_class == BranchClass.SPLITTABLE \
                    and cls.pattern.kind == "phased" and heur.enable_split:
                gain = split_benefit_estimate(bp.history,
                                              cls.pattern.segments, heur)
                if gain > heur.min_gain:
                    plan.decisions.append(Decision(
                        lb.block, term.uid, "split",
                        f"phased x{len(cls.pattern.segments)}, "
                        f"est gain {gain:.0f}cy", lb.direction, gain))
                    continue
                # Not worth splitting; fall through to the guard check —
                # a phased branch with an anomalous segment may still be
                # worth if-converting outright.
                split_rejected = f"split gain {gain:.0f}cy rejected; "

            # Guard candidates: biased-monotonic branches (Figure 6's
            # explicit arm), periodic togglers (eliminating an alternating
            # branch is guarding's best case), and stationary branches the
            # 2-bit predictor handles poorly — the paper's "instruction
            # traces [that] are less regular but suffer from insufficient
            # parallelism" (Section 6).
            misrate = 1.0 - bp.history.prediction_accuracy_2bit()
            wants_guard = cls.wants_ifconvert or bool(split_rejected) or (
                cls.branch_class == BranchClass.SPLITTABLE
                and cls.pattern.kind == "periodic") or (
                cls.branch_class == BranchClass.IRREGULAR and misrate > 0.10)
            if wants_guard and heur.enable_ifconvert:
                verdict, gain = _ifconvert_cost_check(
                    cfg, lb.block, model, heur, misrate=misrate)
                if verdict:
                    plan.decisions.append(Decision(
                        lb.block, term.uid, "ifconvert",
                        f"{split_rejected}{cls.pattern.kind}, guarded "
                        f"saves {gain:.0f}cy", lb.direction, gain))
                    continue
                plan.decisions.append(Decision(
                    lb.block, term.uid, "none",
                    f"{split_rejected}guarded execution not profitable "
                    f"({gain:.0f}cy)", lb.direction, gain))
                continue

            plan.decisions.append(Decision(
                lb.block, term.uid, "none",
                f"{cls.branch_class.value}, freq={freq:.2f}", lb.direction))
    return plan


def _ifconvert_cost_check(cfg: CFG, head: int, model: MachineModel,
                          heur: FeedbackHeuristics,
                          misrate: Optional[float] = None,
                          ) -> tuple[bool, float]:
    """Figure 2's comparison: guarded cost vs the weighted schedule
    estimates with/without speculation, on the actual region.

    *misrate* is the branch's profiled 2-bit miss rate; guarding removes
    the branch, so those mispredictions are credited at the modeled
    penalty.  Returns (apply?, estimated gain in cycles).  Non-diamond
    shapes return (False, 0): if-conversion only handles
    diamonds/triangles anyway.
    """
    from ..transform.ifconvert import find_diamond

    shape = find_diamond(cfg, head)
    if shape is None:
        return (False, 0.0)
    fall, taken, join = shape
    hb = cfg.block(head)
    iters = hb.freq
    if iters <= 0:
        return (False, 0.0)
    total = sum(e.freq for e in cfg.succ_edges[head])
    te = cfg.taken_edge(head)
    p_taken = (te.freq / total) if (te is not None and total > 0) else 0.5

    def arm_ops(bid: int) -> int:
        if bid == join:
            return 0
        return sum(1 for i in cfg.block(bid).instructions if not i.is_control)

    if misrate is None:
        misrate = 2 * p_taken * (1 - p_taken)
    # Per-iteration accounting on the OOO target:
    # + removed mispredictions, at the modeled penalty;
    # - annulled work: the arm NOT taken still occupies dispatch slots
    #   (Figure 2's vacant-slot credit assumes an in-order machine whose
    #   empty slots are free; a 4-wide dispatch-bound core pays for them);
    # - the control->data dependence: correctly-predicted executions now
    #   wait for the predicate compare (paper Section 3).
    wasted_ops = p_taken * arm_ops(fall) + (1 - p_taken) * arm_ops(taken)
    per_iter = (misrate * heur.mispredict_penalty
                - wasted_ops / model.issue_width
                - (1.0 - misrate) * heur.guard_dependence_penalty)
    gain = iters * per_iter
    return (gain > heur.min_gain, gain)
