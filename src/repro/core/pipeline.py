"""End-to-end compilation pipelines.

* :func:`compile_baseline` — what the paper's column 1 runs: the program as
  the native compiler laid it out, locally list-scheduled.
* :func:`compile_proposed` — the paper's proposed approach (column 2):
  profile -> Figure 6 decisions -> split branches / if-conversion /
  branch-likely conversion -> profile-prioritized region scheduling
  (speculation) -> cleanup.  Runs *on top of* the same 2-bit hardware
  prediction.

Every pipeline returns a :class:`CompileResult` carrying the output program
plus the decision trail, so experiments can report what was applied where.

Crash containment
-----------------
Every stage of the proposed pipeline runs inside a
:class:`repro.robust.sandbox.PassSandbox`: a stage that raises, or whose
output fails the IR verifier, is rolled back and recorded as a
:class:`~repro.robust.sandbox.PassFailure` in ``CompileResult.failures``
while the remaining stages continue.  If the final program cannot be
emitted or verified, compilation degrades down the ladder

    proposed  ->  baseline schedule  ->  native (untransformed)

recording which rung it landed on in ``CompileResult.fallback`` — a broken
pass costs performance, never a crashed evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cfg.graph import CFG, build_cfg
from ..cfg.loops import LoopForest
from ..isa.program import Program
from ..obs.metrics import REGISTRY
from ..obs.trace import span as obs_span
from ..profilefb.profiledb import ProfileDB
from ..robust.sandbox import PassFailure, PassSandbox
from ..robust.verifier import VerificationError, verify_program
from ..sched.machine_model import DEFAULT_MODEL, MachineModel
from ..sched.list_scheduler import reorder_block
from ..sched.region import RegionReport, schedule_region
from ..transform.branch_likely import LikelyReport, apply_branch_likely
from ..transform.branch_split import SplitNotApplicable, split_from_profile
from ..transform.dce import eliminate_dead_code
from ..transform.ifconvert import if_convert_diamond
from ..transform.meld import meld_diamond
from .algorithm import DecisionPlan, decide
from .heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics
from .serde import check as serde_check, stamp as serde_stamp


@dataclass
class CompileResult:
    """A compiled program plus the pipeline's decision trail."""

    program: Program
    plan: Optional[DecisionPlan] = None
    splits_applied: int = 0
    ifconverts_applied: int = 0
    melds_applied: int = 0
    likely_report: Optional[LikelyReport] = None
    region_report: Optional[RegionReport] = None
    profile: Optional[ProfileDB] = None
    #: contained pass failures and recorded skips, in pipeline order
    failures: list[PassFailure] = field(default_factory=list)
    #: degradation rung the compile landed on: None (full proposed
    #: pipeline output), "baseline" (local schedule only) or "native"
    #: (input program returned untransformed)
    fallback: Optional[str] = None

    @property
    def degraded(self) -> bool:
        """True when any pass was contained or a fallback was taken."""
        return self.fallback is not None or any(
            f.kind != "skip" for f in self.failures)

    def summary(self) -> str:
        lines = [f"compiled {self.program.name}: "
                 f"{len(self.program)} instructions"]
        if self.plan is not None:
            lines.append(self.plan.summary())
        lines.append(f"  splits applied:      {self.splits_applied}")
        lines.append(f"  if-conversions:      {self.ifconverts_applied}")
        if self.melds_applied:
            lines.append(f"  branches melded:     {self.melds_applied}")
        if self.likely_report is not None:
            lines.append(f"  branch-likelies:     {self.likely_report.converted}")
        if self.region_report is not None:
            lines.append(f"  ops speculated:      {self.region_report.speculated}")
            lines.append(f"  ops duplicated down: {self.region_report.duplicated}")
            if self.region_report.fenced or self.region_report.suppressed:
                lines.append(f"  hoists fenced:       {self.region_report.fenced}"
                             f" (suppressed: {self.region_report.suppressed})")
        if self.fallback is not None:
            lines.append(f"  DEGRADED to:         {self.fallback}")
        for f in self.failures:
            lines.append(f"  {f}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form, reconstructible by :meth:`from_dict`.

        Everything round-trips except ``profile``: a :class:`ProfileDB`
        holds per-branch outcome vectors keyed by process-local instruction
        uids, so it is deliberately dropped — ``from_dict`` restores
        ``profile=None``.  Consumers needing feedback data re-profile.
        """
        return serde_stamp({
            "program": self.program.to_dict(),
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "splits_applied": self.splits_applied,
            "ifconverts_applied": self.ifconverts_applied,
            "melds_applied": self.melds_applied,
            "likely_report": (self.likely_report.to_dict()
                              if self.likely_report is not None else None),
            "region_report": (self.region_report.to_dict()
                              if self.region_report is not None else None),
            "failures": [f.to_dict() for f in self.failures],
            "fallback": self.fallback,
        })

    @classmethod
    def from_dict(cls, d: dict) -> "CompileResult":
        """Inverse of :meth:`to_dict` (``profile`` is restored as None;
        the schema version is checked)."""
        serde_check(d, "CompileResult")
        return cls(
            program=Program.from_dict(d["program"]),
            plan=(DecisionPlan.from_dict(d["plan"])
                  if d["plan"] is not None else None),
            splits_applied=d["splits_applied"],
            ifconverts_applied=d["ifconverts_applied"],
            melds_applied=d.get("melds_applied", 0),
            likely_report=(LikelyReport.from_dict(d["likely_report"])
                           if d["likely_report"] is not None else None),
            region_report=(RegionReport.from_dict(d["region_report"])
                           if d["region_report"] is not None else None),
            failures=[PassFailure.from_dict(f) for f in d["failures"]],
            fallback=d["fallback"],
        )


def compile_baseline(prog: Program,
                     model: MachineModel = DEFAULT_MODEL) -> CompileResult:
    """Locally schedule each block; no global transformation."""
    with obs_span("compile.baseline", program=prog.name):
        cfg = build_cfg(prog)
        for bb in cfg.blocks:
            if bb.instructions:
                reorder_block(bb, model)
        result = CompileResult(program=cfg.to_program(prog.name + ".base"))
    REGISTRY.inc("compiler.compiles_baseline")
    return result


def _fallback_result(prog: Program, model: MachineModel,
                     result: "CompileResult") -> "CompileResult":
    """Degrade *result* down the ladder: baseline schedule, else native."""
    try:
        base = compile_baseline(prog, model)
        base.program.name = prog.name + ".proposed"
        result.program = base.program
        result.fallback = "baseline"
    except Exception as exc:  # noqa: BLE001 - last rung must not raise
        result.failures.append(PassFailure(
            stage="fallback-baseline", kind="exception",
            reason=f"{type(exc).__name__}: {exc}"))
        result.program = prog
        result.fallback = "native"
    return result


def compile_proposed(prog: Program,
                     heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                     model: MachineModel = DEFAULT_MODEL,
                     profile: Optional[ProfileDB] = None,
                     max_steps: int = 20_000_000,
                     verify: bool = True,
                     backend: str = "reference") -> CompileResult:
    """The paper's proposed scheme, end to end, with crash containment.

    Pass a pre-built *profile* to skip the profiling run (e.g. to reuse one
    run across ablation variants).  *verify* runs the IR verifier after
    every pass (rolling back passes that break an invariant); disable it
    only for trusted perf-measurement loops.  *backend* selects the
    execution backend of the profiling run (``"fast"`` uses the
    :mod:`repro.fastsim` generated-step executor; the profile — and
    therefore the compile output — is byte-identical either way).
    """
    with obs_span("compile.proposed", program=prog.name) as sp:
        result = _compile_proposed_inner(prog, heur, model, profile,
                                         max_steps, verify, backend)
        sp.set("fallback", result.fallback)
        sp.set("failures", len(result.failures))
    if REGISTRY.enabled:
        REGISTRY.inc("compiler.compiles_proposed")
        REGISTRY.inc("compiler.splits_applied", result.splits_applied)
        REGISTRY.inc("compiler.ifconverts_applied",
                     result.ifconverts_applied)
        if result.likely_report is not None:
            REGISTRY.inc("compiler.likelies_converted",
                         result.likely_report.converted)
        if result.region_report is not None:
            REGISTRY.inc("compiler.ops_speculated",
                         result.region_report.speculated)
            REGISTRY.inc("compiler.ops_duplicated",
                         result.region_report.duplicated)
        REGISTRY.inc("compiler.passes_contained",
                     sum(1 for f in result.failures if f.kind != "skip"))
    return result


def _compile_proposed_inner(prog: Program, heur: FeedbackHeuristics,
                            model: MachineModel,
                            profile: Optional[ProfileDB],
                            max_steps: int, verify: bool,
                            backend: str = "reference") -> CompileResult:
    result = CompileResult(program=prog)

    # 0. Profiling run.  Without feedback there is nothing to propose:
    #    degrade straight to the baseline schedule.
    if profile is None:
        try:
            with obs_span("pass.profile", program=prog.name):
                profile = ProfileDB.from_run(prog, max_steps=max_steps,
                                             config=heur.classify,
                                             backend=backend)
        except Exception as exc:  # noqa: BLE001
            result.failures.append(PassFailure(
                stage="profile", kind="exception",
                reason=f"{type(exc).__name__}: {exc}"))
            return _fallback_result(prog, model, result)
    result.profile = profile

    try:
        cfg = build_cfg(prog)
    except Exception as exc:  # noqa: BLE001 - input program is broken
        result.failures.append(PassFailure(
            stage="build_cfg", kind="exception",
            reason=f"{type(exc).__name__}: {exc}"))
        return _fallback_result(prog, model, result)

    box = PassSandbox(cfg, verify=verify)
    box.run("annotate", lambda: profile.annotate(cfg))
    forest = LoopForest(cfg)

    plan = box.run("decide", lambda: decide(cfg, forest, profile, heur, model))
    if plan is None:
        plan = DecisionPlan()
    result.plan = plan

    # 1. Branch splitting (changes loop structure: apply first, re-derive
    #    the forest afterwards).  A split that declines records *why* in
    #    the decision trail instead of dropping the reason.
    for d in plan.by_action("split"):
        box.run(f"split@bb{d.block}",
                lambda d=d: split_from_profile(cfg, forest, d.block, profile,
                                               style=heur.split_style),
                skip_exceptions=(SplitNotApplicable,))
        if box.last_ok:
            result.splits_applied += 1
    if result.splits_applied:
        forest = LoopForest(cfg)

    # 2. If-conversion (guarded execution) — or, under the melded scheme,
    #    branch melding: the same Figure 6 "ifconvert" decisions are
    #    consumed, but the diamond is flattened into an unconditional
    #    select sequence (repro.transform.meld) instead of guarded ops.
    for d in plan.by_action("ifconvert"):
        if d.block not in cfg._by_id:
            continue
        if heur.enable_meld:
            melded = box.run(
                f"meld@bb{d.block}",
                lambda d=d: meld_diamond(cfg, d.block,
                                         max_arm_ops=heur.meld_max_arm_ops))
            if melded is not None:
                result.melds_applied += 1
            continue
        converted = box.run(f"ifconvert@bb{d.block}",
                            lambda d=d: if_convert_diamond(cfg, d.block))
        if converted is not None:
            result.ifconverts_applied += 1

    # 3. Branch-likely conversion — the global pass also covers clones via
    #    their profile linkage; the Figure 6 "likely" decisions are a
    #    subset of what it converts.
    if heur.enable_likely:
        result.likely_report = box.run(
            "likely", lambda: apply_branch_likely(cfg, profile))

    # 4. Profile-prioritized speculation + local scheduling.  Under the
    #    safe-speculative scheme a taint-analysis guard vets every hoist
    #    (imported lazily: robust.spectre is an optional consumer of core).
    box.run("annotate", lambda: profile.annotate(cfg))
    if heur.enable_speculation:
        hoist_guard = None
        if heur.spectre_safe:
            from ..robust.spectre import (SpectreHoistGuard,
                                          config_from_heuristics)
            hoist_guard = SpectreHoistGuard(config_from_heuristics(heur))
        result.region_report = box.run(
            "speculate",
            lambda: schedule_region(
                cfg, model, bias_threshold=heur.speculation_bias,
                max_moves_per_block=heur.max_moves_per_block,
                profile=profile, mispredict_window=heur.mispredict_penalty,
                hoist_guard=hoist_guard))
    else:
        def _cleanup() -> None:
            eliminate_dead_code(cfg)
            for bb in cfg.blocks:
                if bb.instructions:
                    reorder_block(bb, model)
        box.run("cleanup", _cleanup)

    result.failures = box.failures

    # 5. Emission + final whole-program verification; degrade on failure.
    try:
        out = cfg.to_program(prog.name + ".proposed")
        if verify:
            violations = verify_program(out)
            if violations:
                raise VerificationError(violations, name=out.name)
    except Exception as exc:  # noqa: BLE001
        result.failures.append(PassFailure(
            stage="emit", kind="exception" if not isinstance(
                exc, VerificationError) else "verify",
            reason=f"{type(exc).__name__}: {exc}"))
        return _fallback_result(prog, model, result)
    result.program = out
    return result


def compile_variant(prog: Program, *, likely: bool = True, split: bool = True,
                    ifconvert: bool = True, speculation: bool = True,
                    spectre: bool = False, meld: bool = False,
                    heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                    **kw) -> CompileResult:
    """Ablation helper: the proposed pipeline with features toggled.

    ``spectre=True`` additionally arms the speculative-safety guard
    (the safe-speculative scheme; see :mod:`repro.robust.spectre`).
    ``meld=True`` replaces if-conversion with branch melding (the melded
    scheme; see :mod:`repro.transform.meld`).
    """
    from dataclasses import replace

    heur = replace(heur, enable_likely=likely, enable_split=split,
                   enable_ifconvert=ifconvert, enable_speculation=speculation,
                   spectre_safe=spectre, enable_meld=meld)
    return compile_proposed(prog, heur=heur, **kw)
