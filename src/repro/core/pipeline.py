"""End-to-end compilation pipelines.

* :func:`compile_baseline` — what the paper's column 1 runs: the program as
  the native compiler laid it out, locally list-scheduled.
* :func:`compile_proposed` — the paper's proposed approach (column 2):
  profile -> Figure 6 decisions -> split branches / if-conversion /
  branch-likely conversion -> profile-prioritized region scheduling
  (speculation) -> cleanup.  Runs *on top of* the same 2-bit hardware
  prediction.

Every pipeline returns a :class:`CompileResult` carrying the output program
plus the decision trail, so experiments can report what was applied where.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cfg.graph import CFG, build_cfg
from ..cfg.loops import LoopForest
from ..isa.program import Program
from ..profilefb.profiledb import ProfileDB
from ..sched.machine_model import DEFAULT_MODEL, MachineModel
from ..sched.list_scheduler import reorder_block
from ..sched.region import RegionReport, schedule_region
from ..transform.branch_likely import LikelyReport, apply_branch_likely
from ..transform.branch_split import SplitNotApplicable, split_from_profile
from ..transform.dce import eliminate_dead_code
from ..transform.ifconvert import if_convert_diamond
from .algorithm import DecisionPlan, decide
from .heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics


@dataclass
class CompileResult:
    """A compiled program plus the pipeline's decision trail."""

    program: Program
    plan: Optional[DecisionPlan] = None
    splits_applied: int = 0
    ifconverts_applied: int = 0
    likely_report: Optional[LikelyReport] = None
    region_report: Optional[RegionReport] = None
    profile: Optional[ProfileDB] = None

    def summary(self) -> str:
        lines = [f"compiled {self.program.name}: "
                 f"{len(self.program)} instructions"]
        if self.plan is not None:
            lines.append(self.plan.summary())
        lines.append(f"  splits applied:      {self.splits_applied}")
        lines.append(f"  if-conversions:      {self.ifconverts_applied}")
        if self.likely_report is not None:
            lines.append(f"  branch-likelies:     {self.likely_report.converted}")
        if self.region_report is not None:
            lines.append(f"  ops speculated:      {self.region_report.speculated}")
            lines.append(f"  ops duplicated down: {self.region_report.duplicated}")
        return "\n".join(lines)


def compile_baseline(prog: Program,
                     model: MachineModel = DEFAULT_MODEL) -> CompileResult:
    """Locally schedule each block; no global transformation."""
    cfg = build_cfg(prog)
    for bb in cfg.blocks:
        if bb.instructions:
            reorder_block(bb, model)
    return CompileResult(program=cfg.to_program(prog.name + ".base"))


def compile_proposed(prog: Program,
                     heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                     model: MachineModel = DEFAULT_MODEL,
                     profile: Optional[ProfileDB] = None,
                     max_steps: int = 20_000_000) -> CompileResult:
    """The paper's proposed scheme, end to end.

    Pass a pre-built *profile* to skip the profiling run (e.g. to reuse one
    run across ablation variants).
    """
    if profile is None:
        profile = ProfileDB.from_run(prog, max_steps=max_steps,
                                     config=heur.classify)
    cfg = build_cfg(prog)
    profile.annotate(cfg)
    forest = LoopForest(cfg)
    plan = decide(cfg, forest, profile, heur, model)
    result = CompileResult(program=prog, plan=plan, profile=profile)

    # 1. Branch splitting (changes loop structure: apply first, re-derive
    #    the forest afterwards).
    for d in plan.by_action("split"):
        try:
            split_from_profile(cfg, forest, d.block, profile,
                               style=heur.split_style)
            result.splits_applied += 1
        except SplitNotApplicable:
            continue
    if result.splits_applied:
        forest = LoopForest(cfg)

    # 2. If-conversion (guarded execution).
    for d in plan.by_action("ifconvert"):
        if d.block not in cfg._by_id:
            continue
        if if_convert_diamond(cfg, d.block) is not None:
            result.ifconverts_applied += 1

    # 3. Branch-likely conversion — the global pass also covers clones via
    #    their profile linkage; the Figure 6 "likely" decisions are a
    #    subset of what it converts.
    if heur.enable_likely:
        result.likely_report = apply_branch_likely(cfg, profile)

    # 4. Profile-prioritized speculation + local scheduling.
    profile.annotate(cfg)
    if heur.enable_speculation:
        result.region_report = schedule_region(
            cfg, model, bias_threshold=heur.speculation_bias,
            max_moves_per_block=heur.max_moves_per_block,
            profile=profile, mispredict_window=heur.mispredict_penalty)
    else:
        eliminate_dead_code(cfg)
        for bb in cfg.blocks:
            if bb.instructions:
                reorder_block(bb, model)

    result.program = cfg.to_program(prog.name + ".proposed")
    return result


def compile_variant(prog: Program, *, likely: bool = True, split: bool = True,
                    ifconvert: bool = True, speculation: bool = True,
                    heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                    **kw) -> CompileResult:
    """Ablation helper: the proposed pipeline with features toggled."""
    from dataclasses import replace

    heur = replace(heur, enable_likely=likely, enable_split=split,
                   enable_ifconvert=ifconvert, enable_speculation=speculation)
    return compile_proposed(prog, heur=heur, **kw)
