"""The paper's primary contribution: cost model, feedback heuristics, the
Figure 6 decision algorithm, and end-to-end compilation pipelines."""

from .cost_model import (
    PAPER_FIG2, PAPER_FIG4_PLAN, DiamondRegion, SegmentPlan, diamond_from_cfg,
    paper_fig4_cost, split_cost, weighted_schedule_cost,
)
from .heuristics import (
    DEFAULT_HEURISTICS, FeedbackHeuristics, split_benefit_estimate,
)
from .algorithm import Decision, DecisionPlan, decide
from .pipeline import (
    CompileResult, compile_baseline, compile_proposed, compile_variant,
)

__all__ = [
    "PAPER_FIG2", "PAPER_FIG4_PLAN", "DiamondRegion", "SegmentPlan",
    "diamond_from_cfg", "paper_fig4_cost", "split_cost",
    "weighted_schedule_cost",
    "DEFAULT_HEURISTICS", "FeedbackHeuristics", "split_benefit_estimate",
    "Decision", "DecisionPlan", "decide",
    "CompileResult", "compile_baseline", "compile_proposed",
    "compile_variant",
]
