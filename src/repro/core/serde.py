"""Shared serialization helpers: one schema-version discipline for all
result types.

Every serializable result type (``SimStats``, ``ExecStats``,
``CompileResult``, ``SchemeResult``, ``BenchmarkRun``, ``DiffReport``,
``CampaignSummary``) stamps :data:`SCHEMA_VERSION` into its ``to_dict``
payload via :func:`stamp` and validates it in ``from_dict`` via
:func:`check`.  A payload written by a different schema generation fails
loudly with :class:`SchemaMismatch` instead of deserializing into
silently wrong fields — and because the engine's artifact-cache envelope
(:data:`repro.engine.keys.SCHEMA_VERSION`) is bumped in lockstep, stale
cached payloads are evicted as misses before they ever reach a
``from_dict``.

:func:`dump_fields`/:func:`load_fields` factor the flat-scalar part of
the five formerly copy-pasted round-trip patterns.
"""

from __future__ import annotations

from typing import Any, Sequence

#: Version stamped into every result payload.  Bump whenever any result
#: type's serialized shape or meaning changes (and bump
#: ``repro.engine.keys.SCHEMA_VERSION`` with it so cached payloads roll).
#: v2: fence counters in ExecStats/SimStats, spectre fields in the
#: compile-result region report, SpectreFinding payloads.
#: v3: SchemeResult/BenchmarkRun payloads carry the execution backend
#: that produced them (repro.fastsim; engine keys v4, serve protocol v2).
#: v4: ``melds_applied`` in CompileResult payloads and the melded scheme
#: in suite records (engine keys v5, serve protocol v3).
SCHEMA_VERSION = 4

#: The key carrying the version inside every payload.
VERSION_KEY = "schema_version"


class SchemaMismatch(ValueError):
    """A payload's schema version is missing or from another generation."""


def stamp(payload: dict, version: int = SCHEMA_VERSION) -> dict:
    """Add the schema version to *payload* (returned for chaining)."""
    payload[VERSION_KEY] = version
    return payload


def check(payload: dict, kind: str,
          version: int = SCHEMA_VERSION) -> dict:
    """Validate *payload*'s schema version; returns it for chaining.

    *kind* names the result type in the error message.  Raises
    :class:`SchemaMismatch` when the version key is absent (pre-versioned
    payload) or differs from *version*.
    """
    got = payload.get(VERSION_KEY)
    if got != version:
        raise SchemaMismatch(
            f"{kind} payload schema_version={got!r}, expected {version} "
            f"(stale artifact? recompute or clear the cache)")
    return payload


def dump_fields(obj: Any, names: Sequence[str]) -> dict:
    """``{name: getattr(obj, name)}`` for the flat fields of a payload."""
    return {name: getattr(obj, name) for name in names}


def load_fields(payload: dict, names: Sequence[str]) -> dict:
    """``{name: payload[name]}`` — kwargs for a dataclass constructor."""
    return {name: payload[name] for name in names}
