"""Synthetic branch-behavior microkernels for ablations.

These generate a single loop whose one forward branch follows a fully
controlled outcome pattern (phased / periodic / biased / random), letting
the ablation benchmarks measure each transform against exactly the behavior
class it targets.
"""

from __future__ import annotations

from typing import Sequence

from ..isa.parser import parse
from ..isa.program import Program
from .common import AUX_BASE


def phased_loop_program(phases: Sequence[tuple[int, str]],
                        body_ops: int = 2) -> Program:
    """A loop whose branch is taken according to *phases*: a list of
    ``(length, kind)`` with kind ``"taken"``, ``"nottaken"`` or
    ``"alternate"``.

    The branch predicate is computed from the iteration counter ``r1``
    against the phase boundaries, so the outcome sequence is exactly the
    requested pattern.  ``body_ops`` pads both arms with arithmetic to give
    the schedulers something to move.
    """
    total = sum(length for length, _ in phases)
    # Decide takenness per phase via boundary tests; build a chain that
    # sets r5 = 1 when the branch should be taken this iteration.
    lines = [
        ".text",
        "main:",
        "    li   r1, 0",
        f"    li   r2, {total}",
        "loop:",
        "    li   r5, 0",
    ]
    start = 0
    for k, (length, kind) in enumerate(phases):
        end = start + length
        lines += [
            f"    slti r6, r1, {start}",
            f"    bnez r6, phase_done_{k}",
            f"    slti r6, r1, {end}",
            f"    beqz r6, phase_done_{k}",
        ]
        if kind == "taken":
            lines.append("    li   r5, 1")
        elif kind == "nottaken":
            lines.append("    li   r5, 0")
        elif kind == "alternate":
            lines.append("    andi r5, r1, 1")
        else:
            raise ValueError(f"unknown phase kind {kind!r}")
        lines.append(f"phase_done_{k}:")
        start = end
    body_t = "\n".join(f"    addi r10, r10, {i + 1}" for i in range(body_ops))
    body_f = "\n".join(f"    addi r11, r11, {i + 1}" for i in range(body_ops))
    lines += [
        "    bnez r5, arm_taken    # the branch under study",
        body_f,
        "    j    latch",
        "arm_taken:",
        body_t,
        "latch:",
        "    addi r1, r1, 1",
        "    bne  r1, r2, loop",
        f"    li   r7, {AUX_BASE}",
        "    sw   r10, 0(r7)",
        "    sw   r11, 4(r7)",
        "    halt",
    ]
    return parse("\n".join(lines), name="synth-phased")


def biased_loop_program(iterations: int = 500, period: int = 8,
                        body_ops: int = 2) -> Program:
    """A loop whose branch is taken except once every *period* iterations
    (bias = 1 - 1/period) — a branch-likely candidate."""
    lines = [
        ".text",
        "main:",
        "    li   r1, 0",
        f"    li   r2, {iterations}",
        "loop:",
        f"    li   r6, {period}",
        "    rem  r5, r1, r6",
        "    bnez r5, arm_taken",
    ]
    lines += [f"    addi r11, r11, {i + 1}" for i in range(body_ops)]
    lines += [
        "    j    latch",
        "arm_taken:",
    ]
    lines += [f"    addi r10, r10, {i + 1}" for i in range(body_ops)]
    lines += [
        "latch:",
        "    addi r1, r1, 1",
        "    bne  r1, r2, loop",
        f"    li   r7, {AUX_BASE}",
        "    sw   r10, 0(r7)",
        "    halt",
    ]
    return parse("\n".join(lines), name="synth-biased")
