"""Imported programs as first-class workloads.

:func:`load_imported` turns files accepted by :mod:`repro.ingest` into
the same ``name -> Program`` mapping :func:`benchmark_programs` produces,
so the profiler, every scheme, the engine cache, and both backends
consume them unchanged (``Session.run_suite(benchmarks=...)``).

The mapping is keyed by the program's content-hashed name
(``main@ab12cd34ef56``): two imports of byte-different files can never
collide with each other or with a synthetic benchmark, which is what
keeps imported cells from poisoning synthetic cache cells.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from ..ingest.errors import IngestError
from ..ingest.lower import import_path
from ..isa.program import Program


def load_imported(paths: Iterable[Union[str, Path]]) \
        -> dict[str, Program]:
    """Import every file in *paths*; returns ``{content-hashed-name:
    Program}``.  Raises :class:`~repro.ingest.errors.IngestError` on the
    first file that fails to import, naming the file."""
    out: dict[str, Program] = {}
    for path in paths:
        try:
            prog = import_path(path)
        except IngestError as exc:
            # Prefix the offending file in place: subclasses have varied
            # constructor signatures, so re-raising the same object keeps
            # both the type and the structured attributes intact.
            exc.args = (f"{path}: {exc.args[0]}",)
            raise
        out[prog.name] = prog
    return out
