"""Shared workload machinery.

All four kernels (compress/espresso/xlisp/grep) generate their input data
in-program with the same 32-bit LCG, so each workload is a self-contained
assembly program *and* has a bit-exact Python reference implementation used
by the test suite to verify the simulated computation.
"""

from __future__ import annotations

MASK32 = 0xFFFF_FFFF

#: LCG constants (glibc's rand).
LCG_A = 1103515245
LCG_C = 12345

#: Conventional buffer addresses, far apart, inside the data region.
SRC_BASE = 0x0010_0000
OUT_BASE = 0x0020_0000
AUX_BASE = 0x0030_0000


def lcg_next(x: int) -> int:
    """One LCG step, identical to the assembly (32-bit wraparound)."""
    return (x * LCG_A + LCG_C) & MASK32


def lcg_stream(seed: int, n: int) -> list[int]:
    """First *n* LCG states after *seed* (the state sequence the assembly
    observes in its generation loops)."""
    out = []
    x = seed
    for _ in range(n):
        x = lcg_next(x)
        out.append(x)
    return out


#: The assembly idiom for one LCG step on register `reg` (clobbers nothing).
def lcg_asm(reg: str) -> str:
    return f"    muli {reg}, {reg}, {LCG_A}\n    addi {reg}, {reg}, {LCG_C}"
