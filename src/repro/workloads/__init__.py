"""Synthetic benchmark programs standing in for the paper's SPEC/unix
workloads (compress, espresso, xlisp, grep) — see DESIGN.md section 3 for
the substitution rationale.  Each module carries a bit-exact Python
reference implementation used by the test suite.
"""

from .common import AUX_BASE, OUT_BASE, SRC_BASE, lcg_next, lcg_stream
from .compress import compress_program, compress_reference, compress_source
from .espresso import espresso_program, espresso_reference, espresso_source
from .xlisp import xlisp_program, xlisp_reference, xlisp_source
from .grep import grep_program, grep_reference, grep_source
from .synth import biased_loop_program, phased_loop_program
from .imported import load_imported

#: The paper's benchmark suite, name -> default-scale program factory.
BENCHMARKS = {
    "compress": compress_program,
    "espresso": espresso_program,
    "xlisp": xlisp_program,
    "grep": grep_program,
}


def _derived_seeds(seed):
    """Per-benchmark seeds from one master seed (None = module defaults).

    Each benchmark gets a distinct odd 31-bit seed via a Weyl-style mix so
    ``seed=N`` never feeds the same LCG stream to two benchmarks.
    """
    if seed is None:
        return {}
    mixed = {name: ((seed * 0x9E3779B1 + i * 0x85EBCA6B) & 0x7FFFFFFF) | 1
             for i, name in enumerate(("compress", "espresso", "grep"))}
    return mixed


def benchmark_programs(scale: float = 1.0, seed=None):
    """Instantiate all four benchmarks, optionally scaled and re-seeded.

    scale multiplies each benchmark's primary size parameter (input bytes,
    cube count, VM iterations, text bytes).  seed, when given, re-seeds the
    input generators of the stochastic benchmarks (compress, espresso,
    grep) with per-benchmark derivations; xlisp's workload is fully
    deterministic and takes no seed.  ``seed=None`` keeps the fixed
    defaults, so repeated calls are bit-identical either way.
    """
    seeds = _derived_seeds(seed)
    compress_kw = {"seed": seeds["compress"]} if seeds else {}
    espresso_kw = {"seed": seeds["espresso"]} if seeds else {}
    grep_kw = {"seed": seeds["grep"]} if seeds else {}
    return {
        "compress": compress_program(n=max(64, int(4000 * scale)),
                                     **compress_kw),
        "espresso": espresso_program(m=max(16, int(120 * scale)),
                                     **espresso_kw),
        "xlisp": xlisp_program(k=max(8, int(600 * scale))),
        "grep": grep_program(n=max(64, int(6000 * scale)), **grep_kw),
    }


__all__ = [
    "AUX_BASE", "OUT_BASE", "SRC_BASE", "lcg_next", "lcg_stream",
    "compress_program", "compress_reference", "compress_source",
    "espresso_program", "espresso_reference", "espresso_source",
    "xlisp_program", "xlisp_reference", "xlisp_source",
    "grep_program", "grep_reference", "grep_source",
    "biased_loop_program", "phased_loop_program",
    "load_imported",
    "BENCHMARKS", "benchmark_programs",
]
