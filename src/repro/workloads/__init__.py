"""Synthetic benchmark programs standing in for the paper's SPEC/unix
workloads (compress, espresso, xlisp, grep) — see DESIGN.md section 3 for
the substitution rationale.  Each module carries a bit-exact Python
reference implementation used by the test suite.
"""

from .common import AUX_BASE, OUT_BASE, SRC_BASE, lcg_next, lcg_stream
from .compress import compress_program, compress_reference, compress_source
from .espresso import espresso_program, espresso_reference, espresso_source
from .xlisp import xlisp_program, xlisp_reference, xlisp_source
from .grep import grep_program, grep_reference, grep_source
from .synth import biased_loop_program, phased_loop_program

#: The paper's benchmark suite, name -> default-scale program factory.
BENCHMARKS = {
    "compress": compress_program,
    "espresso": espresso_program,
    "xlisp": xlisp_program,
    "grep": grep_program,
}


def benchmark_programs(scale: float = 1.0):
    """Instantiate all four benchmarks, optionally scaled.

    scale multiplies each benchmark's primary size parameter (input bytes,
    cube count, VM iterations, text bytes).
    """
    return {
        "compress": compress_program(n=max(64, int(4000 * scale))),
        "espresso": espresso_program(m=max(16, int(120 * scale))),
        "xlisp": xlisp_program(k=max(8, int(600 * scale))),
        "grep": grep_program(n=max(64, int(6000 * scale))),
    }


__all__ = [
    "AUX_BASE", "OUT_BASE", "SRC_BASE", "lcg_next", "lcg_stream",
    "compress_program", "compress_reference", "compress_source",
    "espresso_program", "espresso_reference", "espresso_source",
    "xlisp_program", "xlisp_reference", "xlisp_source",
    "grep_program", "grep_reference", "grep_source",
    "biased_loop_program", "phased_loop_program",
    "BENCHMARKS", "benchmark_programs",
]
