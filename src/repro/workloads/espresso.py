"""espresso — unate-cover minimization kernel.

Models the paper's `espresso` benchmark: two-level logic minimization
dominated by cube-containment tests.  The program

1. generates *m* cubes (24-bit literal masks) with an LCG; every fourth
   cube is derived from its predecessor by OR-ing extra literals, seeding
   genuine containment relations;
2. runs the O(m^2) single-cube containment sweep (``a & b == a`` means
   cube *a* is contained in cube *b*; the covered cube is deleted);
3. counts surviving cubes and sums their literal counts with a bit loop
   (exercising the shifter);
4. checksums survivors into ``r17``.

:func:`espresso_reference` is the bit-exact Python model used by tests.
"""

from __future__ import annotations

from ..isa.parser import parse
from ..isa.program import Program
from .common import AUX_BASE, MASK32, SRC_BASE, lcg_asm, lcg_next

CUBE_MASK = 0xFFFFFF


def espresso_source(m: int = 120, seed: int = 99991) -> str:
    """Assembly text of the espresso kernel over *m* cubes."""
    return f"""
# espresso: unate-cover containment sweep (m={m})
.text
main:
    li   r1, {SRC_BASE}      # cube array base
    li   r2, {m}             # m
    li   r4, {seed}          # lcg state
    li   r3, 0               # i
    li   r13, 0              # previous cube
gen:
{lcg_asm('r4')}
    andi r5, r4, {CUBE_MASK}
    srl  r6, r4, 24
    andi r6, r6, 3
    bnez r6, gen_store       # 3 of 4 cubes: fresh mask
    or   r5, r13, r5         # derived cube: contains its predecessor
gen_store:
    mov  r13, r5
    sll  r7, r3, 2
    add  r7, r1, r7
    sw   r5, 0(r7)
    addi r3, r3, 1
    bne  r3, r2, gen

    # ---- containment sweep: delete cube j if some cube i (i != j) is
    # contained in it (a & b == a with a != b) ----
    li   r3, 0               # i
outer:
    sll  r7, r3, 2
    add  r7, r1, r7
    lw   r10, 0(r7)          # a = cube[i]
    beqz r10, outer_next     # deleted
    addi r11, r3, 1          # j = i + 1
inner:
    slt  r5, r11, r2
    beqz r5, outer_next
    sll  r7, r11, 2
    add  r7, r1, r7
    lw   r12, 0(r7)          # b = cube[j]
    beqz r12, inner_next     # deleted
    # pair-distance statistic: a data-dependent irregular diamond
    xor  r14, r10, r12
    andi r14, r14, 1
    beqz r14, pair_even
    addi r18, r18, 1
    j    pair_done
pair_even:
    addi r19, r19, 1
pair_done:
    and  r14, r10, r12
    bne  r14, r10, chk_rev   # a not within b
    beq  r10, r12, chk_rev   # equal cubes: keep one direction only below
    sw   r0, 0(r7)           # delete b (a covers it is wrong way: b redundant)
    j    inner_next
chk_rev:
    bne  r14, r12, inner_next
    beq  r10, r12, dup_del   # exact duplicate: delete the later one
    # b contained in a: delete a, restart not needed (a gone)
    sll  r7, r3, 2
    add  r7, r1, r7
    sw   r0, 0(r7)
    j    outer_next
dup_del:
    sw   r0, 0(r7)
    j    inner_next
inner_next:
    addi r11, r11, 1
    j    inner
outer_next:
    addi r3, r3, 1
    bne  r3, r2, outer

    # ---- survivors: count, literal popcount, checksum ----
    li   r15, 0              # survivor count
    li   r16, 0              # literal total
    li   r17, 0              # checksum
    li   r3, 0
tally:
    sll  r7, r3, 2
    add  r7, r1, r7
    lw   r10, 0(r7)
    beqz r10, tally_next
    addi r15, r15, 1
    muli r17, r17, 31
    add  r17, r17, r10
pop:
    andi r5, r10, 1
    add  r16, r16, r5
    srl  r10, r10, 1
    bnez r10, pop
tally_next:
    addi r3, r3, 1
    bne  r3, r2, tally

    li   r7, {AUX_BASE}
    sw   r17, 0(r7)
    sw   r15, 4(r7)
    sw   r16, 8(r7)
    sw   r18, 12(r7)
    sw   r19, 16(r7)
    halt
"""


def espresso_program(m: int = 120, seed: int = 99991) -> Program:
    """Parsed, validated espresso kernel."""
    return parse(espresso_source(m, seed), name="espresso")


def espresso_reference(m: int = 120, seed: int = 99991,
                       ) -> tuple[int, int, int, int, int]:
    """Python model; returns (checksum, survivors, literal_total,
    odd_pairs, even_pairs)."""
    cubes: list[int] = []
    x = seed
    prev = 0
    for _ in range(m):
        x = lcg_next(x)
        v = x & CUBE_MASK
        if ((x >> 24) & 3) == 0:
            v = (prev | v) & MASK32
        prev = v
        cubes.append(v)

    odd_pairs = even_pairs = 0
    for i in range(m):
        a = cubes[i]
        if a == 0:
            continue
        j = i + 1
        while j < m:
            b = cubes[j]
            if b == 0:
                j += 1
                continue
            if (a ^ b) & 1:
                odd_pairs += 1
            else:
                even_pairs += 1
            meet = a & b
            if meet == a and a != b:
                cubes[j] = 0
                j += 1
                continue
            if meet == b and a != b:
                cubes[i] = 0
                break
            if a == b:
                cubes[j] = 0
            j += 1

    checksum = survivors = literals = 0
    for v in cubes:
        if v == 0:
            continue
        survivors += 1
        checksum = (checksum * 31 + v) & MASK32
        literals += bin(v).count("1")
    return checksum, survivors, literals, odd_pairs, even_pairs
