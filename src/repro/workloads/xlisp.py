"""xlisp — bytecode interpreter with jump-table dispatch.

Models the paper's `xlisp` benchmark: interpreter-style code dominated by
indirect dispatch.  The dispatch is a **register-relative jump through a
jump table** (``jr``) — exactly the class of branch the paper points out
"cannot be registered in the BTB" and stalls realistic fetch (Section 6),
which is why xlisp shows the lowest IPC of the four benchmarks.

The hosted VM is a small stack machine (push-immediate / arithmetic /
variable load-store / conditional jump).  The interpreted bytecode runs an
iterative ``acc = acc * 3 + k`` reduction for ``k = K .. 1``, leaving the
result in ``r17``.

:func:`xlisp_reference` is the bit-exact Python model used by tests.
"""

from __future__ import annotations

from ..isa.parser import parse
from ..isa.program import Program
from .common import AUX_BASE, MASK32, SRC_BASE

# VM opcodes.
OP_HALT, OP_PUSHI, OP_ADD, OP_SUB, OP_MUL = 0, 1, 2, 3, 4
OP_DUP, OP_JGZ, OP_JMP, OP_LOAD, OP_STORE = 5, 6, 7, 8, 9
NUM_OPS = 10


def vm_bytecode(k: int) -> list[tuple[int, int]]:
    """The interpreted program: acc=1; while k>0: acc=acc*3+k; k-=1."""
    return [
        (OP_PUSHI, 1),   # 0
        (OP_STORE, 0),   # 1  acc = 1
        (OP_PUSHI, k),   # 2
        (OP_STORE, 1),   # 3  k
        (OP_LOAD, 0),    # 4  loop:
        (OP_PUSHI, 3),   # 5
        (OP_MUL, 0),     # 6
        (OP_LOAD, 1),    # 7
        (OP_ADD, 0),     # 8
        (OP_STORE, 0),   # 9  acc = acc*3 + k
        (OP_LOAD, 1),    # 10
        (OP_PUSHI, 1),   # 11
        (OP_SUB, 0),     # 12
        (OP_DUP, 0),     # 13
        (OP_STORE, 1),   # 14 k -= 1 (dup keeps a copy for the test)
        (OP_JGZ, 4),     # 15 loop while k > 0
        (OP_LOAD, 0),    # 16
        (OP_HALT, 0),    # 17 result on top of stack
    ]


def xlisp_source(k: int = 600) -> str:
    """Assembly text of the interpreter + bytecode for *k* VM iterations."""
    code_words = []
    for op, arg in vm_bytecode(k):
        code_words.append(str(op))
        code_words.append(str(arg))
    table = ", ".join(f"&op_{name}" for name in (
        "halt", "pushi", "add", "sub", "mul", "dup", "jgz", "jmp", "load",
        "store"))
    return f"""
# xlisp: stack-VM interpreter with jr jump-table dispatch (K={k})
.data
vmcode:  .word {", ".join(code_words)}
vmtable: .word {table}
.text
main:
    li   r1, {SRC_BASE}          # VM stack base
    li   r2, 0                   # sp (index of next free slot)
    li   r3, 0                   # VM pc
    la   r5, vmcode
    la   r6, vmtable
    li   r15, {SRC_BASE + 0x10000}   # VM variable slots
dispatch:
    sll  r7, r3, 3               # 8 bytes per VM instruction
    add  r7, r5, r7
    lw   r10, 0(r7)              # op
    lw   r11, 4(r7)              # arg
    addi r3, r3, 1
    # opcode accounting (VM profiling): the branch direction follows the
    # interpreted program's opcode sequence — individually mispredicted at
    # every store opcode, and a natural guarded-execution target.
    subi r8, r10, {OP_STORE}
    bnez r8, not_store
    addi r18, r18, 1             # store-class opcode
not_store:
    addi r19, r19, 1             # total dispatched
    sll  r12, r10, 2
    add  r12, r6, r12
    lw   r13, 0(r12)             # handler index
    jr   r13                     # register-relative: no BTB entry

op_pushi:
    sll  r7, r2, 2
    add  r7, r1, r7
    sw   r11, 0(r7)
    addi r2, r2, 1
    j    dispatch
op_add:
    subi r2, r2, 2
    sll  r7, r2, 2
    add  r7, r1, r7
    lw   r13, 0(r7)
    lw   r14, 4(r7)
    add  r13, r13, r14
    sw   r13, 0(r7)
    addi r2, r2, 1
    j    dispatch
op_sub:
    subi r2, r2, 2
    sll  r7, r2, 2
    add  r7, r1, r7
    lw   r13, 0(r7)
    lw   r14, 4(r7)
    sub  r13, r13, r14
    sw   r13, 0(r7)
    addi r2, r2, 1
    j    dispatch
op_mul:
    subi r2, r2, 2
    sll  r7, r2, 2
    add  r7, r1, r7
    lw   r13, 0(r7)
    lw   r14, 4(r7)
    mul  r13, r13, r14
    sw   r13, 0(r7)
    addi r2, r2, 1
    j    dispatch
op_dup:
    subi r7, r2, 1
    sll  r7, r7, 2
    add  r7, r1, r7
    lw   r13, 0(r7)
    sw   r13, 4(r7)
    addi r2, r2, 1
    j    dispatch
op_jgz:
    subi r2, r2, 1
    sll  r7, r2, 2
    add  r7, r1, r7
    lw   r13, 0(r7)
    blez r13, dispatch           # not taken while the VM loop runs
    mov  r3, r11                 # jump: pc = arg
    j    dispatch
op_jmp:
    mov  r3, r11
    j    dispatch
op_load:
    sll  r7, r11, 2
    add  r7, r15, r7
    lw   r13, 0(r7)
    sll  r7, r2, 2
    add  r7, r1, r7
    sw   r13, 0(r7)
    addi r2, r2, 1
    j    dispatch
op_store:
    subi r2, r2, 1
    sll  r7, r2, 2
    add  r7, r1, r7
    lw   r13, 0(r7)
    sll  r7, r11, 2
    add  r7, r15, r7
    sw   r13, 0(r7)
    j    dispatch
op_halt:
    subi r2, r2, 1
    sll  r7, r2, 2
    add  r7, r1, r7
    lw   r17, 0(r7)              # VM result
    li   r7, {AUX_BASE}
    sw   r17, 0(r7)
    sw   r18, 4(r7)              # store-class opcode count
    sw   r19, 8(r7)              # total opcodes dispatched
    halt
"""


def xlisp_program(k: int = 600) -> Program:
    """Parsed, validated xlisp kernel."""
    return parse(xlisp_source(k), name="xlisp")


def xlisp_reference(k: int = 600) -> int:
    """Python model of the interpreted program; returns the VM result."""
    acc = 1
    kk = k
    while kk > 0:
        acc = (acc * 3 + kk) & MASK32
        kk -= 1
    return acc


def xlisp_opcode_counts(k: int = 600) -> tuple[int, int]:
    """Reference opcode counts: (store-class dispatches, total dispatches)."""
    code = vm_bytecode(k)
    stores = total = 0
    pc = 0
    stack: list[int] = []
    vars: dict[int, int] = {}
    while True:
        op, arg = code[pc]
        pc += 1
        total += 1
        if op == OP_STORE:
            stores += 1
        if op == OP_HALT:
            break
        if op == OP_PUSHI:
            stack.append(arg)
        elif op == OP_ADD:
            b, a = stack.pop(), stack.pop()
            stack.append((a + b) & MASK32)
        elif op == OP_SUB:
            b, a = stack.pop(), stack.pop()
            stack.append((a - b) & MASK32)
        elif op == OP_MUL:
            b, a = stack.pop(), stack.pop()
            stack.append((a * b) & MASK32)
        elif op == OP_DUP:
            stack.append(stack[-1])
        elif op == OP_JGZ:
            v = stack.pop()
            if 0 < v < 0x8000_0000:
                pc = arg
        elif op == OP_JMP:
            pc = arg
        elif op == OP_LOAD:
            stack.append(vars.get(arg, 0))
        elif op == OP_STORE:
            vars[arg] = stack.pop()
    return stores, total
