"""grep — naive string search with clustered matches.

Models the paper's `grep` benchmark: a scan loop dominated by a
highly-biased first-character test, with an inner verification loop.  The
first 40 % of the text draws from 'a'..'p' (never the needle's first byte
'q'); the rest draws from 'n'..'q' and receives the injected needle copies,
so the first-character branch is **phased**: always taken (no match) in the
first segment of the scan, taken about 3/4 of the time afterwards — phase
structure aligned with the scan loop's iteration space.

Results: ``r17`` = match count, ``r16`` = text checksum.

:func:`grep_reference` is the bit-exact Python model used by tests.
"""

from __future__ import annotations

from ..isa.parser import parse
from ..isa.program import Program
from .common import AUX_BASE, MASK32, SRC_BASE, lcg_asm, lcg_next

#: The needle: "qrst".  Generated text uses 'a'..'p' only.
PAT = (0x71, 0x72, 0x73, 0x74)


def grep_source(n: int = 6000, injections: int = 40,
                seed: int = 777777) -> str:
    """Assembly text of the grep kernel over *n* text bytes."""
    n1 = (2 * n) // 5  # injections land in [n1, n-4)
    span = n - 4 - n1
    return f"""
# grep: naive search with clustered matches (n={n}, inj={injections})
.text
main:
    li   r1, {SRC_BASE}      # text base
    li   r2, {n}             # n
    li   r4, {seed}          # lcg state
    li   r3, 0               # i
    li   r9, {n1}            # region boundary
gen:
{lcg_asm('r4')}
    srl  r5, r4, 16
    slt  r6, r3, r9
    beqz r6, gen_tail
    andi r5, r5, 15
    addi r5, r5, 0x61        # head region: 'a'..'p' (never 'q')
    j    gen_store
gen_tail:
    andi r5, r5, 3
    addi r5, r5, 0x6e        # tail region: 'n'..'q' (1 in 4 is 'q')
gen_store:
    add  r7, r1, r3
    sb   r5, 0(r7)
    addi r3, r3, 1
    bne  r3, r2, gen

    # ---- inject pattern copies into the final region ----
    li   r3, 0
    li   r8, {injections}
inject:
{lcg_asm('r4')}
    srl  r5, r4, 8
    li   r6, {span}
    rem  r5, r5, r6
    addi r5, r5, {n1}        # pos in [n1, n-4)
    add  r7, r1, r5
    li   r6, {PAT[0]}
    sb   r6, 0(r7)
    li   r6, {PAT[1]}
    sb   r6, 1(r7)
    li   r6, {PAT[2]}
    sb   r6, 2(r7)
    li   r6, {PAT[3]}
    sb   r6, 3(r7)
    addi r3, r3, 1
    bne  r3, r8, inject

    # ---- scan ----
    li   r17, 0              # match count
    li   r3, 0               # i
    li   r9, {n - 3}         # scan limit
    li   r10, {PAT[0]}
    li   r18, 0              # chars in class [a-o]
    li   r19, 0              # chars above 'o'
    li   r8, 0x6f            # 'o'
scan:
    add  r7, r1, r3
    lbu  r5, 0(r7)
    # character-class accounting: biased in the head region, a coin flip
    # in the tail — an irregular diamond executed every scan iteration
    slt  r6, r8, r5
    bnez r6, class_high
    addi r18, r18, 1
    j    class_done
class_high:
    addi r19, r19, 1
class_done:
    bne  r5, r10, scan_next  # phased: always taken for i < n1
    lbu  r5, 1(r7)
    li   r6, {PAT[1]}
    bne  r5, r6, scan_next
    lbu  r5, 2(r7)
    li   r6, {PAT[2]}
    bne  r5, r6, scan_next
    lbu  r5, 3(r7)
    li   r6, {PAT[3]}
    bne  r5, r6, scan_next
    addi r17, r17, 1
scan_next:
    addi r3, r3, 1
    bne  r3, r9, scan

    # ---- checksum + low/high histogram (irregular, then biased: the
    # branch behavior flips with the text's region structure) ----
    li   r16, 0
    li   r3, 0
    li   r12, 0              # low-half count
    li   r13, 0              # high-half count
    li   r14, 0x68           # 'h'
sum:
    add  r7, r1, r3
    lbu  r5, 0(r7)
    muli r16, r16, 31
    add  r16, r16, r5
    slt  r6, r14, r5
    bnez r6, hist_high       # c > 'h': 50/50 in head, ~always in tail
    addi r12, r12, 1
    j    hist_done
hist_high:
    addi r13, r13, 1
hist_done:
    addi r3, r3, 1
    bne  r3, r2, sum

    li   r7, {AUX_BASE}
    sw   r17, 0(r7)
    sw   r16, 4(r7)
    sw   r12, 8(r7)
    sw   r13, 12(r7)
    sw   r18, 16(r7)
    sw   r19, 20(r7)
    halt
"""


def grep_program(n: int = 6000, injections: int = 40,
                 seed: int = 777777) -> Program:
    """Parsed, validated grep kernel."""
    return parse(grep_source(n, injections, seed), name="grep")


def grep_reference(n: int = 6000, injections: int = 40,
                   seed: int = 777777) -> tuple[int, int, int, int, int, int]:
    """Python model; returns (match_count, text_checksum, low_count,
    high_count, class_lo, class_hi)."""
    n1 = (2 * n) // 5
    span = n - 4 - n1
    text = bytearray(n)
    x = seed
    for i in range(n):
        x = lcg_next(x)
        if i < n1:
            text[i] = 0x61 + ((x >> 16) & 15)
        else:
            text[i] = 0x6E + ((x >> 16) & 3)
    for _ in range(injections):
        x = lcg_next(x)
        # `rem` is signed in the ISA; (x >> 8) keeps the value positive.
        pos = n1 + ((x >> 8) % span)
        text[pos:pos + 4] = bytes(PAT)

    matches = class_lo = class_hi = 0
    for i in range(n - 3):
        if text[i] > 0x6F:
            class_hi += 1
        else:
            class_lo += 1
        if tuple(text[i:i + 4]) == PAT:
            matches += 1

    checksum = low = high = 0
    for b in text:
        checksum = (checksum * 31 + b) & MASK32
        if b > 0x68:
            high += 1
        else:
            low += 1
    return matches, checksum, low, high, class_lo, class_hi
