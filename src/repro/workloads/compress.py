"""compress — run-length compressor with phase-structured input.

Models the paper's `compress` benchmark: "several nested branches with
minimal code interspersed between them".  The program

1. generates *n* input bytes with an LCG, in three phases — highly
   compressible (long zero runs), incompressible (random nibbles), then
   compressible again — giving the inner match branch the phased behavior
   the split-branch transform targets;
2. RLE-compresses the buffer (escape byte 255 for runs >= 4);
3. checksums the output into ``r17`` (and memory at AUX_BASE).

:func:`compress_reference` is the bit-exact Python model used by tests.
"""

from __future__ import annotations

from ..isa.parser import parse
from ..isa.program import Program
from .common import AUX_BASE, MASK32, OUT_BASE, SRC_BASE, lcg_asm, lcg_next

ESCAPE = 255
MIN_RUN = 4
MAX_RUN = 255


def compress_source(n: int = 4000, seed: int = 12345) -> str:
    """Assembly text of the compress kernel for *n* input bytes."""
    n1, n2 = (2 * n) // 5, (3 * n) // 5
    return f"""
# compress: phase-structured RLE kernel (n={n})
.text
main:
    li   r1, {SRC_BASE}      # src base
    li   r2, {n}             # n
    li   r8, {n1}            # phase boundary 1
    li   r9, {n2}            # phase boundary 2
    li   r3, 0               # i
    li   r4, {seed}          # lcg state
gen:
{lcg_asm('r4')}
    srl  r5, r4, 16
    slt  r6, r3, r8
    bnez r6, gen_runny       # i < n1: compressible phase
    slt  r6, r3, r9
    bnez r6, gen_random      # n1 <= i < n2: random phase
gen_runny:
    andi r5, r5, 7
    seq  r5, r5, r0          # 1 in 8 bytes is a 1; runs of 0 otherwise
    j    gen_store
gen_random:
    andi r5, r5, 15
gen_store:
    add  r7, r1, r3
    sb   r5, 0(r7)
    addi r3, r3, 1
    bne  r3, r2, gen

    # ---- RLE compression ----
    li   r10, {OUT_BASE}     # out base
    li   r11, 0              # out pos
    li   r3, 0               # i
comp:
    slt  r5, r3, r2
    beqz r5, comp_done
    add  r7, r1, r3
    lbu  r13, 0(r7)          # c = src[i]
    li   r12, 1              # run = 1
run_scan:
    add  r14, r3, r12
    slt  r5, r14, r2
    beqz r5, run_done        # off the end
    add  r7, r1, r14
    lbu  r14, 0(r7)
    bne  r14, r13, run_done  # phased: rarely taken in runny phases
    addi r12, r12, 1
    slti r5, r12, {MAX_RUN}
    bnez r5, run_scan
run_done:
    slti r5, r12, {MIN_RUN}
    bnez r5, literal
    # emit escape triple (255, c, run)
    add  r7, r10, r11
    li   r14, {ESCAPE}
    sb   r14, 0(r7)
    sb   r13, 1(r7)
    sb   r12, 2(r7)
    addi r11, r11, 3
    j    advance
literal:
    li   r15, 0
lit_loop:
    add  r7, r10, r11
    sb   r13, 0(r7)
    addi r11, r11, 1
    addi r15, r15, 1
    bne  r15, r12, lit_loop
advance:
    # max-run tracking: a data-dependent triangle (taken less and less
    # often as the maximum settles — an irregular-early branch).
    slt  r5, r16, r12
    beqz r5, no_newmax
    mov  r16, r12            # r16 = max run seen
no_newmax:
    add  r3, r3, r12
    j    comp
comp_done:

    # ---- checksum the output (parity-weighted: an irregular diamond) ----
    li   r17, 0              # checksum
    li   r3, 0
    beqz r11, store_sum
sum_loop:
    add  r7, r10, r3
    lbu  r5, 0(r7)
    muli r17, r17, 31
    andi r6, r5, 1
    beqz r6, sum_even        # data-dependent: irregular in random phase
    muli r5, r5, 3
    add  r17, r17, r5
    j    sum_next
sum_even:
    sub  r17, r17, r5
sum_next:
    addi r3, r3, 1
    bne  r3, r11, sum_loop
store_sum:
    li   r7, {AUX_BASE}
    sw   r17, 0(r7)
    sw   r11, 4(r7)          # compressed length in r11
    sw   r16, 8(r7)          # maximum run length
    halt
"""


def compress_program(n: int = 4000, seed: int = 12345) -> Program:
    """Parsed, validated compress kernel."""
    prog = parse(compress_source(n, seed), name="compress")
    return prog


def compress_reference(n: int = 4000,
                       seed: int = 12345) -> tuple[int, int, int]:
    """Bit-exact Python model; returns (checksum, compressed_length,
    max_run)."""
    n1, n2 = (2 * n) // 5, (3 * n) // 5
    src = []
    x = seed
    for i in range(n):
        x = lcg_next(x)
        v = (x >> 16) & MASK32
        if i < n1 or i >= n2:
            src.append(1 if (v & 7) == 0 else 0)
        else:
            src.append(v & 15)

    out: list[int] = []
    i = 0
    max_run = 0
    while i < n:
        c = src[i]
        run = 1
        while i + run < n and src[i + run] == c and run < MAX_RUN:
            run += 1
        if run >= MIN_RUN:
            out.extend((ESCAPE, c, run))
        else:
            out.extend([c] * run)
        max_run = max(max_run, run)
        i += run

    checksum = 0
    for b in out:
        checksum = (checksum * 31) & MASK32
        if b & 1:
            checksum = (checksum + 3 * b) & MASK32
        else:
            checksum = (checksum - b) & MASK32
    return checksum, len(out), max_run
