"""Experiment harness: the paper's three-scheme comparison and Tables 1-4."""

from .runner import (
    SCHEMES, BenchmarkRun, SchemeResult, run_benchmark, run_suite,
    suite_failures, suite_from_dict, suite_to_dict,
)
from .paper_data import (
    PAPER_TABLE1, PAPER_TABLE3_BR, PAPER_TABLE4_IPC, format_shape_verdicts,
    shape_verdicts,
)
from .report import render_report, write_report
from .tables import (
    PAPER_ORDER, format_improvements, format_table1, format_table2,
    format_table3, format_table4, table1, table2, table3, table4,
)

__all__ = [
    "PAPER_TABLE1", "PAPER_TABLE3_BR", "PAPER_TABLE4_IPC",
    "format_shape_verdicts", "shape_verdicts",
    "render_report", "write_report",
    "SCHEMES", "BenchmarkRun", "SchemeResult", "run_benchmark", "run_suite",
    "suite_failures", "suite_from_dict", "suite_to_dict",
    "PAPER_ORDER", "format_improvements", "format_table1", "format_table2",
    "format_table3", "format_table4", "table1", "table2", "table3", "table4",
]
