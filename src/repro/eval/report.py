"""Markdown report generation from a suite run.

``write_report`` produces a self-contained results document (the
machine-generated appendix of EXPERIMENTS.md): configuration, Tables 1-4,
improvement summary, and per-benchmark compilation trails.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional

from ..sim.config import MachineConfig, R10K
from .runner import SCHEMES, BenchmarkRun
from .tables import (
    _ordered, format_improvements, table1, table2, table3, table4,
)


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def render_report(runs: Mapping[str, BenchmarkRun],
                  config: MachineConfig = R10K,
                  title: str = "Suite results") -> str:
    """Render the full results document as markdown."""
    parts: list[str] = [f"# {title}", ""]

    parts.append("## Machine configuration")
    parts.append("")
    parts.append(_md_table(
        ["parameter", "value"],
        [["fetch/dispatch/commit width",
          f"{config.fetch_width}/{config.dispatch_width}/{config.commit_width}"],
         ["int/addr/fp queues",
          f"{config.int_queue_size}/{config.addr_queue_size}/{config.fp_queue_size}"],
         ["branch buffer", str(config.branch_buffer_size)],
         ["active list (ROB)", str(config.rob_size)],
         ["physical/architectural registers",
          f"{config.phys_int_regs}/{config.arch_int_regs}"],
         ["BHT entries", str(config.bht_entries)],
         ["misprediction refill", str(config.misprediction_recovery)],
         ["I/D caches",
          f"{config.icache_size // 1024}KB/{config.dcache_size // 1024}KB, "
          f"{config.cache_line}B lines"]]))
    parts.append("")

    parts.append("## Table 1 — benchmark characteristics")
    parts.append("")
    parts.append(_md_table(
        ["benchmark", "dynamic instrs", "branch %", "predicted %"],
        [[r["benchmark"], f"FAIL({r['FAIL']})", "—", "—"]
         if "FAIL" in r else
         [r["benchmark"], f"{r['dynamic_instructions']:,}",
          f"{r['branch_pct']:.2f}", f"{r['predicted_pct']:.2f}"]
         for r in table1(runs)]))
    parts.append("")

    parts.append("## Table 2 — latencies")
    parts.append("")
    parts.append(_md_table(
        ["instruction", "latency"],
        [[r["instruction"], str(r["latency"])] for r in table2(config)]))
    parts.append("")

    parts.append("## Table 3 — reservation-station usage (% cycles full)")
    parts.append("")
    headers = ["benchmark"]
    for s in SCHEMES:
        headers += [f"{s} BR", f"{s} LDST", f"{s} ALU"]
    rows = []
    for r in table3(runs):
        row = [r["benchmark"]]
        for s in SCHEMES:
            if "FAIL" in r[s]:
                row += [f"FAIL({r[s]['FAIL']})", "—", "—"]
            else:
                row += [f"{r[s]['BR']:.2f}", f"{r[s]['LDST']:.2f}",
                        f"{r[s]['ALU']:.2f}"]
        rows.append(row)
    parts.append(_md_table(headers, rows))
    parts.append("")

    parts.append("## Table 4 — functional-unit usage and IPC")
    parts.append("")
    headers = ["benchmark"]
    for s in SCHEMES:
        headers += [f"{s} ALU", f"{s} LDST", f"{s} SFT", f"{s} IPC"]
    rows = []
    for r in table4(runs):
        row = [r["benchmark"]]
        for s in SCHEMES:
            if "FAIL" in r[s]:
                row += [f"FAIL({r[s]['FAIL']})", "—", "—", "—"]
            else:
                row += [f"{r[s]['ALU']:.2f}", f"{r[s]['LDST']:.2f}",
                        f"{r[s]['SFT']:.2f}", f"{r[s]['IPC']:.3f}"]
        rows.append(row)
    parts.append(_md_table(headers, rows))
    parts.append("")

    parts.append("## Headline")
    parts.append("")
    parts.append("```")
    parts.append(format_improvements(runs))
    parts.append("```")
    parts.append("")

    parts.append("## Compilation trails (Proposed scheme)")
    parts.append("")
    for name in _ordered(runs):
        cr = runs[name]["Proposed"].compile_result
        if cr is None:
            continue
        parts.append(f"### {name}")
        parts.append("")
        parts.append("```")
        parts.append(cr.summary())
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write_report(runs: Mapping[str, BenchmarkRun], path: str | Path,
                 config: MachineConfig = R10K,
                 title: Optional[str] = None) -> Path:
    """Write the rendered report; returns the path written."""
    path = Path(path)
    path.write_text(render_report(runs, config,
                                  title or "Suite results") + "\n")
    return path
