"""The paper's published evaluation numbers, as structured data.

Transcribed from Srinivas & Nicolau (IPPS 1998) Tables 1, 3 and 4 so that
benchmarks can print side-by-side comparisons and EXPERIMENTS.md stays
checkable.  Scheme keys follow :data:`repro.eval.runner.SCHEMES`.
"""

from __future__ import annotations

from typing import Mapping

from .runner import SCHEMES, BenchmarkRun

#: Table 1 — dynamic instructions (millions), branch %, predicted %.
PAPER_TABLE1 = {
    "compress": {"dynamic_millions": 0.41, "branch_pct": 20.81,
                 "predicted_pct": 91.98},
    "espresso": {"dynamic_millions": 786.58, "branch_pct": 19.26,
                 "predicted_pct": 94.57},
    "xlisp": {"dynamic_millions": 5256.53, "branch_pct": 23.12,
              "predicted_pct": 89.21},
    "grep": {"dynamic_millions": 0.31, "branch_pct": 22.28,
             "predicted_pct": 92.0},
}

#: Table 3 — % cycles the BR reservation buffer is full, per scheme.
PAPER_TABLE3_BR = {
    "compress": {"2bitBP": 13.91, "Proposed": 44.47, "PerfectBP": 64.8},
    "espresso": {"2bitBP": 9.05, "Proposed": 57.9, "PerfectBP": 64.8},
    "xlisp": {"2bitBP": 13.67, "Proposed": 48.2, "PerfectBP": 67.6},
    "grep": {"2bitBP": 13.75, "Proposed": 53.28, "PerfectBP": 69.21},
}

#: Table 4 — IPC per scheme.
PAPER_TABLE4_IPC = {
    "compress": {"2bitBP": 0.63, "Proposed": 1.16, "PerfectBP": 1.51},
    "espresso": {"2bitBP": 0.68, "Proposed": 1.36, "PerfectBP": 1.53},
    "xlisp": {"2bitBP": 0.61, "Proposed": 0.98, "PerfectBP": 1.33},
    "grep": {"2bitBP": 0.64, "Proposed": 1.25, "PerfectBP": 1.49},
}


def shape_verdicts(runs: Mapping[str, BenchmarkRun]) -> list[dict]:
    """Per-benchmark shape comparison against the paper.

    For each benchmark, reports whether the measured scheme ordering
    matches the paper's (IPC: 2bitBP < Proposed <= PerfectBP; BR occupancy
    non-decreasing across schemes), plus measured-vs-paper improvement
    factors.
    """
    out = []
    for name, run in runs.items():
        if name not in PAPER_TABLE4_IPC:
            continue
        if not run.ok:  # failed cells cannot be shape-compared
            continue
        measured_ipc = {s: run[s].stats.ipc for s in SCHEMES}
        paper_ipc = PAPER_TABLE4_IPC[name]
        measured_br = {s: run[s].stats.queue_full_pct("br") for s in SCHEMES}
        paper_br = PAPER_TABLE3_BR[name]

        def ordered(d):
            return d["2bitBP"] <= d["Proposed"] * 1.01 \
                and d["Proposed"] <= d["PerfectBP"] * 1.05

        out.append({
            "benchmark": name,
            "ipc_ordering_matches": ordered(measured_ipc),
            "paper_ipc_ordering": ordered(paper_ipc),
            "br_ordering_matches": measured_br["2bitBP"]
            <= measured_br["PerfectBP"] + 1e-9,
            "improvement_measured": measured_ipc["Proposed"]
            / measured_ipc["2bitBP"],
            "improvement_paper": paper_ipc["Proposed"] / paper_ipc["2bitBP"],
        })
    return out


def format_shape_verdicts(runs: Mapping[str, BenchmarkRun]) -> str:
    """Render the shape comparison as aligned text."""
    rows = shape_verdicts(runs)
    lines = ["Shape comparison against the paper",
             f"{'benchmark':<12} {'IPC order':>10} {'BR order':>9} "
             f"{'improv (meas)':>14} {'improv (paper)':>15}"]
    for r in rows:
        lines.append(
            f"{r['benchmark']:<12} "
            f"{'ok' if r['ipc_ordering_matches'] else 'MISMATCH':>10} "
            f"{'ok' if r['br_ordering_matches'] else 'MISMATCH':>9} "
            f"{r['improvement_measured']:>13.2f}x "
            f"{r['improvement_paper']:>14.2f}x")
    return "\n".join(lines)
