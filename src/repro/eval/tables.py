"""Table generation: the paper's Tables 1-4 from a suite run.

Each ``table_N`` function returns structured rows; ``format_table_N``
renders the same rows as aligned text matching the paper's layout.
"""

from __future__ import annotations

from typing import Mapping

from ..sim.config import Latencies, MachineConfig, R10K
from .runner import SCHEMES, BenchmarkRun

#: Paper benchmark order (Table 1).
PAPER_ORDER = ("compress", "espresso", "xlisp", "grep")


def _ordered(runs: Mapping[str, BenchmarkRun]) -> list[str]:
    known = [b for b in PAPER_ORDER if b in runs]
    extra = [b for b in runs if b not in PAPER_ORDER]
    return known + extra


def _fail_cell(reason: str, width: int) -> str:
    """Render a failed cell as ``FAIL(<reason>)`` fitted to *width*."""
    text = f"FAIL({reason})"
    if len(text) > width:
        text = text[:width - 4] + "...)"
    return f"{text:>{width}}"


# ---------------------------------------------------------------------------
# Table 1: benchmark characteristics
# ---------------------------------------------------------------------------


def table1(runs: Mapping[str, BenchmarkRun]) -> list[dict]:
    """Benchmark characteristics of the *baseline* binaries.

    Columns per the paper: dynamic instructions, % branch instructions in
    the dynamic stream (conditional + jumps), % correctly predicted
    branches under the 2-bit scheme.
    """
    rows = []
    for name in _ordered(runs):
        r = runs[name]["2bitBP"]
        if not r.ok:
            rows.append({"benchmark": name, "FAIL": r.failure or "unknown"})
            continue
        ex = r.exec_stats
        control = ex.branches + ex.jumps
        rows.append({
            "benchmark": name,
            "dynamic_instructions": ex.steps,
            "branch_pct": 100.0 * control / ex.steps if ex.steps else 0.0,
            "predicted_pct": 100.0 * r.stats.predictor.accuracy,
        })
    return rows


def format_table1(runs: Mapping[str, BenchmarkRun]) -> str:
    """Render Table 1 as aligned text."""
    lines = [
        "Table 1: Benchmark characteristics",
        f"{'Benchmark':<12} {'Dynamic':>12} {'Branch':>10} {'Correctly':>12}",
        f"{'':<12} {'instrs':>12} {'instrs %':>10} {'predicted %':>12}",
    ]
    for row in table1(runs):
        if "FAIL" in row:
            lines.append(f"{row['benchmark']:<12} "
                         + _fail_cell(row["FAIL"], 36))
            continue
        lines.append(
            f"{row['benchmark']:<12} {row['dynamic_instructions']:>12,} "
            f"{row['branch_pct']:>10.2f} {row['predicted_pct']:>12.2f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2: latencies (a configuration echo)
# ---------------------------------------------------------------------------


def table2(config: MachineConfig = R10K) -> list[dict]:
    """The paper's Table 2: instruction latencies of the configuration."""
    lat: Latencies = config.latencies
    return [
        {"instruction": "alu", "latency": lat.alu},
        {"instruction": "ld/st", "latency": lat.ldst},
        {"instruction": "sft", "latency": lat.sft},
        {"instruction": "fp add", "latency": lat.fpadd},
        {"instruction": "fp mul", "latency": lat.fpmul},
        {"instruction": "fp div", "latency": lat.fpdiv},
        {"instruction": "cache miss penalty", "latency": lat.cache_miss_penalty},
    ]


def format_table2(config: MachineConfig = R10K) -> str:
    """Render Table 2 as aligned text."""
    lines = ["Table 2: Latencies",
             f"{'Instruction':<20} {'Latency':>8}"]
    for row in table2(config):
        lines.append(f"{row['instruction']:<20} {row['latency']:>8}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3: reservation-station usage
# ---------------------------------------------------------------------------


def table3(runs: Mapping[str, BenchmarkRun]) -> list[dict]:
    """% of commit cycles each reservation buffer (BR / LDST / ALU) was
    full, per scheme."""
    rows = []
    for name in _ordered(runs):
        row: dict = {"benchmark": name}
        for scheme in SCHEMES:
            r = runs[name][scheme]
            if not r.ok:
                row[scheme] = {"FAIL": r.failure or "unknown"}
                continue
            st = r.stats
            row[scheme] = {
                "BR": st.queue_full_pct("br"),
                "LDST": st.queue_full_pct("ldst"),
                "ALU": st.queue_full_pct("alu"),
            }
        rows.append(row)
    return rows


def format_table3(runs: Mapping[str, BenchmarkRun]) -> str:
    """Render Table 3 as aligned text."""
    lines = [
        "Table 3: Reservation Station Usage Summary (% cycles full)",
        f"{'Benchmark':<12}" + "".join(
            f" | {s:^23}" for s in SCHEMES),
        f"{'':<12}" + " | ".join([""] + [f"{'BR':>7}{'LDST':>8}{'ALU':>8}"
                                         for _ in SCHEMES])[3:],
    ]
    for row in table3(runs):
        cells = []
        for scheme in SCHEMES:
            c = row[scheme]
            if "FAIL" in c:
                cells.append(_fail_cell(c["FAIL"], 23))
                continue
            cells.append(f"{c['BR']:>7.2f}{c['LDST']:>8.2f}{c['ALU']:>8.2f}")
        lines.append(f"{row['benchmark']:<12} | " + " | ".join(cells))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 4: functional-unit usage and IPC
# ---------------------------------------------------------------------------


def table4(runs: Mapping[str, BenchmarkRun]) -> list[dict]:
    """% of commit cycles each unit class (ALU / LDST / SFT) was saturated,
    plus IPC (excluding annulled), per scheme."""
    rows = []
    for name in _ordered(runs):
        row: dict = {"benchmark": name}
        for scheme in SCHEMES:
            r = runs[name][scheme]
            if not r.ok:
                row[scheme] = {"FAIL": r.failure or "unknown"}
                continue
            st = r.stats
            row[scheme] = {
                "ALU": st.unit_full_pct("alu"),
                "LDST": st.unit_full_pct("ldst"),
                "SFT": st.unit_full_pct("sft"),
                "IPC": st.ipc,
            }
        rows.append(row)
    return rows


def format_table4(runs: Mapping[str, BenchmarkRun]) -> str:
    """Render Table 4 as aligned text."""
    lines = [
        "Table 4: Functional Unit Usage Summary and IPC",
        f"{'Benchmark':<12}" + "".join(
            f" | {s:^31}" for s in SCHEMES),
        f"{'':<12}" + " | ".join([""] + [
            f"{'ALU':>7}{'LDST':>8}{'SFT':>8}{'IPC':>7}" for _ in SCHEMES])[3:],
    ]
    for row in table4(runs):
        cells = []
        for scheme in SCHEMES:
            c = row[scheme]
            if "FAIL" in c:
                cells.append(_fail_cell(c["FAIL"], 30))
                continue
            cells.append(f"{c['ALU']:>7.2f}{c['LDST']:>8.2f}"
                         f"{c['SFT']:>8.2f}{c['IPC']:>7.3f}")
        lines.append(f"{row['benchmark']:<12} | " + " | ".join(cells))
    return "\n".join(lines)


def format_improvements(runs: Mapping[str, BenchmarkRun]) -> str:
    """Headline summary: Proposed/2bitBP, PerfectBP/2bitBP and (when the
    schemes ran) safe-speculative/2bitBP and melded/2bitBP IPC ratios —
    the safety cost of fencing Spectre-flagged hoists and the throughput
    of replacing guarded execution with conditional-move melding."""
    lines = ["IPC improvement over the 2-bit baseline",
             f"{'Benchmark':<12} {'Proposed':>10} {'Perfect':>10}"
             f" {'Safe':>10} {'Melded':>10}"]
    ratios = []
    failed = 0
    for name in _ordered(runs):
        r = runs[name]
        if not r.ok:
            reason = r.failures[0].failure or "unknown"
            lines.append(f"{name:<12} {_fail_cell(reason, 32)}")
            failed += 1
            continue
        prop = r.improvement
        perf = r["PerfectBP"].stats.ipc / r["2bitBP"].stats.ipc
        safe = r.results.get("safe-speculative")
        safe_txt = (f" {safe.stats.ipc / r['2bitBP'].stats.ipc:>9.2f}x"
                    if safe is not None and safe.ok else f" {'-':>10}")
        meld = r.results.get("melded")
        meld_txt = (f" {meld.stats.ipc / r['2bitBP'].stats.ipc:>9.2f}x"
                    if meld is not None and meld.ok else f" {'-':>10}")
        ratios.append(prop)
        lines.append(f"{name:<12} {prop:>9.2f}x {perf:>9.2f}x{safe_txt}"
                     f"{meld_txt}")
    if ratios:
        lines.append(f"{'geo-mean':<12} "
                     f"{(_geomean(ratios)):>9.2f}x"
                     + (f"   ({failed} benchmark(s) FAILED, excluded)"
                        if failed else ""))
    return "\n".join(lines)


def _geomean(xs: list[float]) -> float:
    p = 1.0
    for x in xs:
        p *= x
    return p ** (1.0 / len(xs))
