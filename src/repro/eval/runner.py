"""Scheme runner: executes the paper's three-way comparison.

The paper's Tables 3 and 4 compare, per benchmark:

1. ``2bitBP``      — native code, 512-entry 2-bit prediction;
2. ``Proposed``    — the combined approach (branch splitting + guarded
   execution + branch-likelies + prioritized speculation) *in addition to*
   the same 2-bit prediction;
3. ``PerfectBP``   — native code, perfect prediction (theoretical bound).

Suite isolation
---------------
Each (benchmark, scheme) cell runs in containment: a cell that raises is
retried once (transient allocator/recursion issues), then recorded as a
*failed cell* — ``SchemeResult.failure`` holds the classified reason and
the tables render ``FAIL(<reason>)`` instead of the whole run aborting.
``strict=True`` restores fail-fast for debugging.

Engine integration
------------------
:func:`run_suite` routes through :mod:`repro.engine`: pass ``cache`` to
reuse previously computed cells from the content-addressed artifact store
and ``jobs`` to fan cache misses out over worker processes.  The default
(``jobs=1``, no cache) behaves exactly like the original serial loop —
including calling :func:`run_benchmark` through this module's namespace,
so monkeypatched fault injection keeps working.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from .._deprecation import deprecated
from ..core import serde
from ..core.heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics
from ..core.pipeline import CompileResult, compile_baseline, compile_proposed
from ..engine.cells import COUNTERS
from ..isa.program import Program
from ..obs.pipeline_obs import maybe_observer
from ..obs.trace import span as obs_span
from ..sim.config import MachineConfig, r10k_config
from ..sim.functional import ExecStats, FunctionalSim
from ..sim.pipeline import TimingSim
from ..sim.stats import SimStats
from ..workloads import benchmark_programs

#: Scheme names in the paper's column order, plus the speculative-safety
#: variant (``safe-speculative``: the Proposed pipeline with every
#: Spectre-flagged hoist fenced, see :mod:`repro.robust.spectre`) and the
#: branch-melding variant (``melded``: if-conversion decisions flattened
#: into native conditional-move selects, see :mod:`repro.transform.meld`).
SCHEMES = ("2bitBP", "Proposed", "PerfectBP", "safe-speculative", "melded")

#: Per-cell retry count before a failure is recorded (transient faults).
CELL_RETRIES = 1


@dataclass
class SchemeResult:
    """One (benchmark, scheme) cell of the evaluation.

    A failed cell carries ``failure`` (one-line reason) instead of stats;
    check :attr:`ok` before dereferencing ``stats``/``exec_stats``.
    """

    benchmark: str
    scheme: str
    stats: Optional[SimStats] = None
    exec_stats: Optional[ExecStats] = None
    compile_result: Optional[CompileResult] = None
    failure: Optional[str] = None
    failure_detail: str = ""

    @property
    def ok(self) -> bool:
        """True when the cell produced statistics."""
        return self.failure is None and self.stats is not None

    def to_dict(self) -> dict:
        """JSON-serializable form: the engine's artifact-cache payload and
        the ``tables --json`` record for this cell."""
        return serde.stamp({
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "stats": self.stats.to_dict() if self.stats else None,
            "exec_stats": (self.exec_stats.to_dict()
                           if self.exec_stats else None),
            "compile_result": (self.compile_result.to_dict()
                               if self.compile_result else None),
            "failure": self.failure,
            "failure_detail": self.failure_detail,
        })

    @classmethod
    def from_dict(cls, d: dict) -> "SchemeResult":
        """Inverse of :meth:`to_dict` (schema-version checked)."""
        serde.check(d, "SchemeResult")
        return cls(
            benchmark=d["benchmark"],
            scheme=d["scheme"],
            stats=SimStats.from_dict(d["stats"]) if d["stats"] else None,
            exec_stats=(ExecStats.from_dict(d["exec_stats"])
                        if d["exec_stats"] else None),
            compile_result=(CompileResult.from_dict(d["compile_result"])
                            if d["compile_result"] else None),
            failure=d["failure"],
            failure_detail=d["failure_detail"],
        )


@dataclass
class BenchmarkRun:
    """All three schemes for one benchmark."""

    name: str
    results: dict[str, SchemeResult] = field(default_factory=dict)

    def __getitem__(self, scheme: str) -> SchemeResult:
        return self.results[scheme]

    @property
    def ok(self) -> bool:
        """True when every scheme cell produced statistics."""
        return all(r.ok for r in self.results.values())

    @property
    def failures(self) -> list[SchemeResult]:
        """The failed cells of this benchmark (empty when clean)."""
        return [r for r in self.results.values() if not r.ok]

    @property
    def improvement(self) -> float:
        """Proposed-over-2bitBP IPC ratio (the paper's headline metric).

        ``nan`` when either cell failed — failed cells poison ratios, not
        the whole report.
        """
        prop, base = self.results.get("Proposed"), self.results.get("2bitBP")
        if prop is None or base is None or not (prop.ok and base.ok):
            return float("nan")
        return prop.stats.ipc / base.stats.ipc

    def to_dict(self) -> dict:
        """JSON-serializable form (``tables --json`` per-benchmark record)."""
        imp = self.improvement
        return serde.stamp(
            {"name": self.name,
             "results": {s: r.to_dict() for s, r in self.results.items()},
             "improvement": None if imp != imp else imp})

    @classmethod
    def from_dict(cls, d: dict) -> "BenchmarkRun":
        """Inverse of :meth:`to_dict` (``improvement`` is recomputed;
        the schema version is checked)."""
        serde.check(d, "BenchmarkRun")
        return cls(name=d["name"],
                   results={s: SchemeResult.from_dict(r)
                            for s, r in d["results"].items()})


def _short_reason(exc: BaseException) -> str:
    """One-line classification of a cell failure for table rendering."""
    text = str(exc).splitlines()[0] if str(exc) else ""
    name = type(exc).__name__
    return f"{name}: {text}"[:80] if text else name


def _run(prog: Program, config: MachineConfig,
         max_steps: int = 50_000_000,
         backend: str = "reference") -> tuple[SimStats, ExecStats]:
    COUNTERS.simulates += 1
    if backend == "fast":
        from ..fastsim.backend import simulate as fast_simulate

        return fast_simulate(prog, config, max_steps=max_steps)
    fsim = FunctionalSim(prog, max_steps=max_steps, record_outcomes=False)
    tsim = TimingSim(config, observer=maybe_observer())
    stats = tsim.run(fsim.trace())
    return stats, fsim.stats


def _run_cell(benchmark: str, scheme: str, fn: Callable[[], SchemeResult],
              strict: bool, retries: int = CELL_RETRIES) -> SchemeResult:
    """Execute one cell with retry-once and failure capture."""
    with obs_span(f"cell.{scheme}", benchmark=benchmark,
                  scheme=scheme) as sp:
        last: Optional[BaseException] = None
        for _ in range(retries + 1):
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                if strict:
                    raise
                last = exc
        sp.set("failure", _short_reason(last))
        detail = "".join(traceback.format_exception(
            type(last), last, last.__traceback__)[-4:])
        return SchemeResult(benchmark, scheme, failure=_short_reason(last),
                            failure_detail=detail)


def run_benchmark_impl(name: str, prog: Program,
                       heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                       config_overrides: Optional[dict] = None,
                       max_steps: int = 50_000_000,
                       strict: bool = False,
                       backend: str = "reference") -> BenchmarkRun:
    """Run every scheme in :data:`SCHEMES` on one benchmark program.

    With ``strict=False`` (default) a crashing cell is retried once and
    then recorded as failed; with ``strict=True`` the exception propagates.
    ``backend="fast"`` runs every cell on the :mod:`repro.fastsim`
    backend (byte-identical results, transparent reference fallback).
    """
    overrides = config_overrides or {}
    run = BenchmarkRun(name=name)

    # Compiles are shared across cells; a failed compile fails only the
    # cells that need its output.
    compiles: dict[str, Optional[CompileResult]] = {}

    def _compiled(kind: str) -> CompileResult:
        if kind not in compiles:
            COUNTERS.compiles += 1
            if kind == "base":
                compiles[kind] = compile_baseline(prog)
            elif kind == "safe":
                compiles[kind] = compile_proposed(
                    prog, heur=replace(heur, spectre_safe=True),
                    max_steps=max_steps, backend=backend)
            elif kind == "meld":
                compiles[kind] = compile_proposed(
                    prog, heur=replace(heur, enable_meld=True),
                    max_steps=max_steps, backend=backend)
            else:
                compiles[kind] = compile_proposed(prog, heur=heur,
                                                  max_steps=max_steps,
                                                  backend=backend)
        return compiles[kind]

    def _cell(scheme: str, kind: str, predictor: str) -> SchemeResult:
        cr = _compiled(kind)
        st, ex = _run(cr.program, r10k_config(predictor, **overrides),
                      max_steps, backend=backend)
        return SchemeResult(name, scheme, st, ex, cr)

    for scheme, kind, predictor in (("2bitBP", "base", "twobit"),
                                    ("Proposed", "prop", "twobit"),
                                    ("PerfectBP", "base", "perfect"),
                                    ("safe-speculative", "safe", "twobit"),
                                    ("melded", "meld", "twobit")):
        run.results[scheme] = _run_cell(
            name, scheme,
            lambda s=scheme, k=kind, p=predictor: _cell(s, k, p),
            strict=strict)
    return run


run_benchmark = deprecated(
    "repro.api.Session.run_benchmark")(run_benchmark_impl)


def run_suite_impl(scale: float = 1.0,
                   heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                   benchmarks: Optional[dict[str, Program]] = None,
                   config_overrides: Optional[dict] = None,
                   progress: Optional[Callable[[str], None]] = None,
                   max_steps: int = 50_000_000,
                   strict: bool = False,
                   jobs: int = 1,
                   cache=None,
                   timeout: Optional[float] = None,
                   seed: Optional[int] = None,
                   backend: Optional[str] = None) -> dict[str, BenchmarkRun]:
    """Run the full benchmark suite through all three schemes.

    Returns ``{benchmark: BenchmarkRun}`` in the paper's benchmark order.
    A benchmark whose *construction* fails is recorded as a run whose three
    cells all failed (unless ``strict``); cell-level failures are handled
    by :func:`run_benchmark`.

    Execution routes through :func:`repro.engine.run_suite`: *cache*
    (None, True, a path, or an :class:`~repro.engine.ArtifactCache`)
    enables the content-addressed artifact store, *jobs* > 1 runs cache
    misses in parallel worker processes with an optional per-cell
    *timeout* (seconds), and *seed* re-seeds the synthetic workloads.
    *backend* selects the execution backend (``"reference"``/``"fast"``;
    None defers to ``REPRO_BACKEND``, then ``"reference"``).
    """
    from ..engine.suite import run_suite as _engine_run_suite

    return _engine_run_suite(
        scale=scale, heur=heur, benchmarks=benchmarks,
        config_overrides=config_overrides, progress=progress,
        max_steps=max_steps, strict=strict, jobs=jobs, cache=cache,
        timeout=timeout, seed=seed, backend=backend)


run_suite = deprecated("repro.api.Session.run_suite")(run_suite_impl)


def suite_to_dict(runs: dict[str, BenchmarkRun]) -> dict:
    """Machine-readable form of a suite run (``tables --json``)."""
    return {name: run.to_dict() for name, run in runs.items()}


def suite_from_dict(d: dict) -> dict[str, BenchmarkRun]:
    """Inverse of :func:`suite_to_dict`."""
    return {name: BenchmarkRun.from_dict(run) for name, run in d.items()}


def suite_failures(runs: dict[str, BenchmarkRun]) -> list[SchemeResult]:
    """All failed cells across a suite run, in benchmark order."""
    out: list[SchemeResult] = []
    for run in runs.values():
        out.extend(run.failures)
    return out
