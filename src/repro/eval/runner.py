"""Scheme runner: executes the paper's three-way comparison.

The paper's Tables 3 and 4 compare, per benchmark:

1. ``2bitBP``      — native code, 512-entry 2-bit prediction;
2. ``Proposed``    — the combined approach (branch splitting + guarded
   execution + branch-likelies + prioritized speculation) *in addition to*
   the same 2-bit prediction;
3. ``PerfectBP``   — native code, perfect prediction (theoretical bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics
from ..core.pipeline import CompileResult, compile_baseline, compile_proposed
from ..isa.program import Program
from ..sim.config import MachineConfig, r10k_config
from ..sim.functional import ExecStats, FunctionalSim
from ..sim.pipeline import TimingSim
from ..sim.stats import SimStats
from ..workloads import benchmark_programs

#: Scheme names in the paper's column order.
SCHEMES = ("2bitBP", "Proposed", "PerfectBP")


@dataclass
class SchemeResult:
    """One (benchmark, scheme) cell of the evaluation."""

    benchmark: str
    scheme: str
    stats: SimStats
    exec_stats: ExecStats
    compile_result: Optional[CompileResult] = None


@dataclass
class BenchmarkRun:
    """All three schemes for one benchmark."""

    name: str
    results: dict[str, SchemeResult] = field(default_factory=dict)

    def __getitem__(self, scheme: str) -> SchemeResult:
        return self.results[scheme]

    @property
    def improvement(self) -> float:
        """Proposed-over-2bitBP IPC ratio (the paper's headline metric)."""
        return (self.results["Proposed"].stats.ipc
                / self.results["2bitBP"].stats.ipc)


def _run(prog: Program, config: MachineConfig,
         max_steps: int = 50_000_000) -> tuple[SimStats, ExecStats]:
    fsim = FunctionalSim(prog, max_steps=max_steps, record_outcomes=False)
    tsim = TimingSim(config)
    stats = tsim.run(fsim.trace())
    return stats, fsim.stats


def run_benchmark(name: str, prog: Program,
                  heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                  config_overrides: Optional[dict] = None,
                  max_steps: int = 50_000_000) -> BenchmarkRun:
    """Run the three schemes on one benchmark program."""
    overrides = config_overrides or {}
    base = compile_baseline(prog)
    prop = compile_proposed(prog, heur=heur, max_steps=max_steps)
    run = BenchmarkRun(name=name)

    st, ex = _run(base.program, r10k_config("twobit", **overrides), max_steps)
    run.results["2bitBP"] = SchemeResult(name, "2bitBP", st, ex, base)
    st, ex = _run(prop.program, r10k_config("twobit", **overrides), max_steps)
    run.results["Proposed"] = SchemeResult(name, "Proposed", st, ex, prop)
    st, ex = _run(base.program, r10k_config("perfect", **overrides), max_steps)
    run.results["PerfectBP"] = SchemeResult(name, "PerfectBP", st, ex, base)
    return run


def run_suite(scale: float = 1.0,
              heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
              benchmarks: Optional[dict[str, Program]] = None,
              config_overrides: Optional[dict] = None,
              progress: Optional[Callable[[str], None]] = None,
              max_steps: int = 50_000_000) -> dict[str, BenchmarkRun]:
    """Run the full benchmark suite through all three schemes.

    Returns ``{benchmark: BenchmarkRun}`` in the paper's benchmark order.
    """
    programs = benchmarks if benchmarks is not None \
        else benchmark_programs(scale)
    out: dict[str, BenchmarkRun] = {}
    for name, prog in programs.items():
        if progress:
            progress(name)
        out[name] = run_benchmark(name, prog, heur=heur,
                                  config_overrides=config_overrides,
                                  max_steps=max_steps)
    return out
