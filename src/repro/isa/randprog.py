"""Random well-formed program generation for differential testing.

Generates programs that are guaranteed to terminate (counted loops only)
and to exercise arithmetic, memory, conditional control flow and diamonds,
so that property-based tests can co-simulate original vs transformed code
over a large space of shapes.

Determinism: everything derives from the caller's seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .instruction import make
from .program import Program

#: Registers the generator plays with (leaving the rest as a rename pool).
GEN_REGS = [f"r{i}" for i in range(1, 16)]
#: Scratch memory base used by generated loads/stores.
MEM_BASE = 0x0005_0000


@dataclass
class RandProgConfig:
    """Knobs for the random program generator."""

    num_blocks: int = 4            # diamond count upper bound
    ops_per_block: tuple[int, int] = (1, 6)
    loop_iterations: tuple[int, int] = (3, 40)
    with_loop: bool = True
    with_memory: bool = True
    with_calls: bool = False       # emit jal/jr helper-function calls
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, default=None)


def _random_op(rng: random.Random, cfg: RandProgConfig) -> str:
    """One random non-control instruction line."""
    d = rng.choice(GEN_REGS)
    a = rng.choice(GEN_REGS)
    b = rng.choice(GEN_REGS)
    kind = rng.randrange(8 if cfg.with_memory else 6)
    if kind == 0:
        return f"    li   {d}, {rng.randrange(-100, 100)}"
    if kind == 1:
        return f"    add  {d}, {a}, {b}"
    if kind == 2:
        return f"    sub  {d}, {a}, {b}"
    if kind == 3:
        return f"    mul  {d}, {a}, {b}"
    if kind == 4:
        return f"    addi {d}, {a}, {rng.randrange(-8, 9)}"
    if kind == 5:
        return f"    sll  {d}, {a}, {rng.randrange(0, 4)}"
    if kind == 6:
        # Aligned scratch load.
        return (f"    andi {d}, {a}, 0xFC\n"
                f"    li   r16, {MEM_BASE}\n"
                f"    add  r16, r16, {d}\n"
                f"    lw   {d}, 0(r16)")
    # Aligned scratch store.
    return (f"    andi {d}, {a}, 0xFC\n"
            f"    li   r16, {MEM_BASE}\n"
            f"    add  r16, r16, {d}\n"
            f"    sw   {b}, 0(r16)")


def _random_branch(rng: random.Random, target: str) -> str:
    a = rng.choice(GEN_REGS)
    b = rng.choice(GEN_REGS)
    op = rng.choice(["beq", "bne", "beqz", "bnez", "blez", "bgtz"])
    if op in ("beq", "bne"):
        return f"    {op} {a}, {b}, {target}"
    return f"    {op} {a}, {target}"


def random_program(seed: int = 0,
                   cfg: RandProgConfig | None = None) -> Program:
    """Generate a random, validated, terminating program.

    Structure: optional counted loop wrapping a chain of diamonds, each
    with random bodies and a data-dependent branch; results funneled into
    stores at AUX-style addresses so transforms can be checked against
    observable state.
    """
    from .parser import parse

    cfg = cfg or RandProgConfig()
    rng = random.Random(seed ^ cfg.seed)

    lines: list[str] = [".text", "main:"]
    # Seed registers with data-dependent values.
    for i, r in enumerate(GEN_REGS[:8]):
        lines.append(f"    li   {r}, {rng.randrange(-50, 120)}")

    iters = rng.randrange(*cfg.loop_iterations) if cfg.with_loop else 1
    if cfg.with_loop:
        lines += ["    li   r17, 0",
                  f"    li   r18, {iters}",
                  "loop_head:"]

    ndiamonds = rng.randrange(1, max(2, cfg.num_blocks))
    helpers = rng.randrange(1, 3) if cfg.with_calls else 0
    for d in range(ndiamonds):
        then_l, join_l = f"then_{d}", f"join_{d}"
        lines.append(_random_branch(rng, then_l))
        for _ in range(rng.randrange(*cfg.ops_per_block)):
            lines.append(_random_op(rng, cfg))
        lines.append(f"    j    {join_l}")
        lines.append(f"{then_l}:")
        for _ in range(rng.randrange(*cfg.ops_per_block)):
            lines.append(_random_op(rng, cfg))
        lines.append(f"{join_l}:")
        if helpers and rng.random() < 0.5:
            lines.append(f"    jal  helper_{rng.randrange(helpers)}")
        for _ in range(rng.randrange(*cfg.ops_per_block)):
            lines.append(_random_op(rng, cfg))

    if cfg.with_loop:
        lines += ["    addi r17, r17, 1",
                  "    bne  r17, r18, loop_head"]

    # Funnel observable state into memory.
    lines.append(f"    li   r16, {MEM_BASE + 0x1000}")
    for i, r in enumerate(GEN_REGS[:10]):
        lines.append(f"    sw   {r}, {4 * i}(r16)")
    lines.append("    halt")

    # Helper functions (leaf calls through jal/jr; they only touch
    # generator registers, so the caller's observable state still flows
    # through them deterministically).
    for h in range(helpers):
        lines.append(f"helper_{h}:")
        for _ in range(rng.randrange(*cfg.ops_per_block)):
            lines.append(_random_op(rng, cfg))
        lines.append("    jr   r31")
    return parse("\n".join(lines), name=f"rand-{seed}")


def observable_state(prog: Program, max_steps: int = 2_000_000):
    """Run *prog*; return the observable memory words the generator
    funnels results into (plus halt status)."""
    from ..sim.functional import FunctionalSim

    sim = FunctionalSim(prog, max_steps=max_steps)
    sim.run()
    base = MEM_BASE + 0x1000
    return tuple(sim.mem.read_word(base + 4 * i) for i in range(10))
