"""Random well-formed program generation for differential testing.

Generates programs that are guaranteed to terminate (counted loops only)
and to exercise arithmetic, memory, conditional control flow and diamonds,
so that property-based tests can co-simulate original vs transformed code
over a large space of shapes.

Determinism: everything derives from the caller's seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .instruction import make
from .program import Program

#: Registers the generator plays with (leaving the rest as a rename pool).
GEN_REGS = [f"r{i}" for i in range(1, 16)]
#: Registers treated as attacker-controlled by the gadget-seeding mode —
#: kept in sync with :data:`repro.robust.spectre.UNTRUSTED_REGS`.  With
#: ``untrusted_inputs`` set they are left unseeded (they read as zero at
#: runtime, keeping functional determinism) so the static taint analysis
#: sees genuine entry taint.
UNTRUSTED_REGS = ("r4", "r5", "r6", "r7")
#: Scratch memory base used by generated loads/stores.
MEM_BASE = 0x0005_0000
#: cc registers the guarded-op emitter cycles through.
GEN_CC_REGS = ("cc0", "cc1", "cc2", "cc3")
#: Branch-shape knob values (see :class:`RandProgConfig.branch_pattern`).
BRANCH_PATTERNS = ("mixed", "monotonic", "alternating", "phased")


@dataclass
class RandProgConfig:
    """Knobs for the random program generator."""

    num_blocks: int = 4            # diamond count upper bound
    ops_per_block: tuple[int, int] = (1, 6)
    loop_iterations: tuple[int, int] = (3, 40)
    with_loop: bool = True
    with_memory: bool = True
    with_calls: bool = False       # emit jal/jr helper-function calls
    #: probability that a generated op is a cmp + guarded (predicated)
    #: instruction pair — stresses guard handling in every pass
    guard_density: float = 0.0
    #: dynamic shape of the diamond branches (needs ``with_loop``):
    #: "mixed" (data-dependent, the default), "monotonic" (same outcome
    #: every iteration), "alternating" (toggles each iteration: maximal
    #: toggle factor), "phased" (one flip mid-loop: balanced frequency but
    #: near-zero toggle — the classifier's hardest case)
    branch_pattern: str = "mixed"
    #: leave :data:`UNTRUSTED_REGS` unseeded so they carry entry taint for
    #: the speculative-safety analysis (repro.robust.spectre)
    untrusted_inputs: bool = False
    #: probability that a diamond is a Spectre-shaped gadget: a branch on
    #: an untrusted register whose taken arm opens with a dependent
    #: double-load chain (needs ``untrusted_inputs`` and ``with_memory``)
    gadget_density: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, default=None)


def _random_op(rng: random.Random, cfg: RandProgConfig) -> str:
    """One random non-control instruction line."""
    d = rng.choice(GEN_REGS)
    a = rng.choice(GEN_REGS)
    b = rng.choice(GEN_REGS)
    if cfg.guard_density and rng.random() < cfg.guard_density:
        # A compare defining a cc register immediately guards the next op,
        # so the predicate is live on every path (verifier-clean) while
        # still exercising guarded def/use logic in every pass.
        cc = rng.choice(GEN_CC_REGS)
        cmp_op = rng.choice(["cmplt", "cmpeq", "cmpgt", "cmple"])
        sense = "" if rng.random() < 0.5 else "!"
        body = rng.choice([f"add  {d}, {d}, {a}", f"sub  {d}, {d}, {b}",
                           f"addi {d}, {d}, {rng.randrange(-8, 9)}"])
        return (f"    {cmp_op} {cc}, {a}, {b}\n"
                f"    ({sense}{cc}) {body}")
    kind = rng.randrange(8 if cfg.with_memory else 6)
    if kind == 0:
        return f"    li   {d}, {rng.randrange(-100, 100)}"
    if kind == 1:
        return f"    add  {d}, {a}, {b}"
    if kind == 2:
        return f"    sub  {d}, {a}, {b}"
    if kind == 3:
        return f"    mul  {d}, {a}, {b}"
    if kind == 4:
        return f"    addi {d}, {a}, {rng.randrange(-8, 9)}"
    if kind == 5:
        return f"    sll  {d}, {a}, {rng.randrange(0, 4)}"
    if kind == 6:
        # Aligned scratch load.
        return (f"    andi {d}, {a}, 0xFC\n"
                f"    li   r16, {MEM_BASE}\n"
                f"    add  r16, r16, {d}\n"
                f"    lw   {d}, 0(r16)")
    # Aligned scratch store.
    return (f"    andi {d}, {a}, 0xFC\n"
            f"    li   r16, {MEM_BASE}\n"
            f"    add  r16, r16, {d}\n"
            f"    sw   {b}, 0(r16)")


def _gadget_lines(rng: random.Random, untrusted: str) -> str:
    """The access→transmit half of a Spectre gadget (both loads masked to
    the scratch region, so the program stays architecturally well-behaved
    no matter what the unseeded register holds)."""
    d = rng.choice(GEN_REGS)
    return (f"    andi r19, {untrusted}, 0xFC\n"
            f"    li   r16, {MEM_BASE}\n"
            f"    add  r16, r16, r19\n"
            f"    lw   r19, 0(r16)\n"
            f"    andi r19, r19, 0xFC\n"
            f"    li   r16, {MEM_BASE}\n"
            f"    add  r16, r16, r19\n"
            f"    lw   {d}, 0(r16)")


def _random_branch(rng: random.Random, target: str) -> str:
    a = rng.choice(GEN_REGS)
    b = rng.choice(GEN_REGS)
    op = rng.choice(["beq", "bne", "beqz", "bnez", "blez", "bgtz"])
    if op in ("beq", "bne"):
        return f"    {op} {a}, {b}, {target}"
    return f"    {op} {a}, {target}"


def _pattern_branch(rng: random.Random, cfg: RandProgConfig, target: str,
                    iters: int) -> str:
    """A diamond branch with a controlled dynamic outcome profile.

    The loop counter lives in ``r17`` and the bound in ``r18`` (see
    :func:`random_program`), so inside the loop body we can synthesize
    branches whose *runtime* behavior — not just shape — stresses the
    profile classifier: always-same (monotonic), toggle-every-iteration
    (maximal toggle factor), and flip-once-mid-loop (phased: balanced
    taken frequency, near-zero toggle).
    """
    if not cfg.with_loop or cfg.branch_pattern == "mixed":
        return _random_branch(rng, target)
    if cfg.branch_pattern == "monotonic":
        # r18 holds the (positive) iteration bound: bnez is always taken,
        # beqz never — a stable branch either way.
        op = rng.choice(["bnez", "beqz"])
        return f"    {op} r18, {target}"
    if cfg.branch_pattern == "alternating":
        op = rng.choice(["bnez", "beqz"])
        return (f"    andi r19, r17, 1\n"
                f"    {op} r19, {target}")
    if cfg.branch_pattern == "phased":
        # Taken for the first half of the iterations only: one toggle.
        return (f"    addi r19, r17, {-max(1, iters // 2)}\n"
                f"    bgtz r19, {target}")
    raise ValueError(f"unknown branch_pattern {cfg.branch_pattern!r} "
                     f"(expected one of {BRANCH_PATTERNS})")


def random_program(seed: int = 0,
                   cfg: RandProgConfig | None = None) -> Program:
    """Generate a random, validated, terminating program.

    Structure: optional counted loop wrapping a chain of diamonds, each
    with random bodies and a data-dependent branch; results funneled into
    stores at AUX-style addresses so transforms can be checked against
    observable state.
    """
    from .parser import parse

    cfg = cfg or RandProgConfig()
    rng = random.Random(seed ^ cfg.seed)

    lines: list[str] = [".text", "main:"]
    # Seed registers with data-dependent values.  In gadget-seeding mode
    # the untrusted registers stay unseeded: the functional simulator
    # zeroes them (deterministic), while the static taint analysis sees
    # attacker-controlled entry values.
    for i, r in enumerate(GEN_REGS[:8]):
        if cfg.untrusted_inputs and r in UNTRUSTED_REGS:
            continue
        lines.append(f"    li   {r}, {rng.randrange(-50, 120)}")

    iters = rng.randrange(*cfg.loop_iterations) if cfg.with_loop else 1
    if cfg.with_loop:
        lines += ["    li   r17, 0",
                  f"    li   r18, {iters}",
                  "loop_head:"]

    ndiamonds = rng.randrange(1, max(2, cfg.num_blocks))
    helpers = rng.randrange(1, 3) if cfg.with_calls else 0
    calls_emitted = 0
    for d in range(ndiamonds):
        then_l, join_l = f"then_{d}", f"join_{d}"
        gadget = (cfg.gadget_density > 0 and cfg.untrusted_inputs
                  and cfg.with_memory
                  and rng.random() < cfg.gadget_density)
        if gadget:
            # Spectre-shaped diamond: branch on an untrusted input, taken
            # arm opens with the dependent double-load chain.
            u = rng.choice(UNTRUSTED_REGS)
            lines.append(f"    {rng.choice(['bnez', 'bgtz'])} {u}, {then_l}")
        else:
            lines.append(_pattern_branch(rng, cfg, then_l, iters))
        for _ in range(rng.randrange(*cfg.ops_per_block)):
            lines.append(_random_op(rng, cfg))
        lines.append(f"    j    {join_l}")
        lines.append(f"{then_l}:")
        if gadget:
            lines.append(_gadget_lines(rng, u))
        for _ in range(rng.randrange(*cfg.ops_per_block)):
            lines.append(_random_op(rng, cfg))
        lines.append(f"{join_l}:")
        if helpers and (rng.random() < 0.5
                        or (not calls_emitted and d == ndiamonds - 1)):
            # The last diamond forces a call site, so with_calls=True
            # always yields at least one dynamic jal/jr round trip.
            lines.append(f"    jal  helper_{rng.randrange(helpers)}")
            calls_emitted += 1
        for _ in range(rng.randrange(*cfg.ops_per_block)):
            lines.append(_random_op(rng, cfg))

    if cfg.with_loop:
        lines += ["    addi r17, r17, 1",
                  "    bne  r17, r18, loop_head"]

    # Funnel observable state into memory.
    lines.append(f"    li   r16, {MEM_BASE + 0x1000}")
    for i, r in enumerate(GEN_REGS[:10]):
        lines.append(f"    sw   {r}, {4 * i}(r16)")
    lines.append("    halt")

    # Helper functions (leaf calls through jal/jr; they only touch
    # generator registers, so the caller's observable state still flows
    # through them deterministically).
    for h in range(helpers):
        lines.append(f"helper_{h}:")
        for _ in range(rng.randrange(*cfg.ops_per_block)):
            lines.append(_random_op(rng, cfg))
        lines.append("    jr   r31")
    return parse("\n".join(lines), name=f"rand-{seed}")


def observable_state(prog: Program, max_steps: int = 2_000_000):
    """Run *prog*; return the observable memory words the generator
    funnels results into (plus halt status)."""
    from ..sim.functional import FunctionalSim

    sim = FunctionalSim(prog, max_steps=max_steps)
    sim.run()
    base = MEM_BASE + 0x1000
    return tuple(sim.mem.read_word(base + 4 * i) for i in range(10))
