"""MIPS-like ISA substrate: registers, opcodes, instructions, programs.

This package defines the intermediate representation every other subsystem
operates on, mirroring the MIPS-like intermediate code of the paper's
toolchain (GNU-compiled sources pre-processed to MIPS-like intermediate
code, Section 6).
"""

from .registers import (
    ALL_REGS, CC_REGS, FP_REGS, INT_REGS, NUM_CC_REGS, NUM_FP_REGS,
    NUM_INT_REGS, RA_REG, SP_REG, ZERO_REG, RegisterPool, cc_reg, fp_reg,
    int_reg, is_cc_reg, is_fp_reg, is_int_reg, is_register, reg_index,
    register_class,
)
from .opcodes import (
    BRANCH_TO_CMP, LIKELY_OF, NEGATED_BRANCH, OPCODES, PLAIN_OF, Fmt, OpInfo,
    Unit, is_opcode, opinfo,
)
from .instruction import Guard, Instruction, make
from .program import DATA_BASE, Program
from .parser import ParseError, parse
from .printer import format_instruction, format_program

__all__ = [
    "ALL_REGS", "CC_REGS", "FP_REGS", "INT_REGS", "NUM_CC_REGS",
    "NUM_FP_REGS", "NUM_INT_REGS", "RA_REG", "SP_REG", "ZERO_REG",
    "RegisterPool", "cc_reg", "fp_reg", "int_reg", "is_cc_reg", "is_fp_reg",
    "is_int_reg", "is_register", "reg_index", "register_class",
    "BRANCH_TO_CMP", "LIKELY_OF", "NEGATED_BRANCH", "OPCODES", "PLAIN_OF",
    "Fmt", "OpInfo", "Unit", "is_opcode", "opinfo",
    "Guard", "Instruction", "make",
    "DATA_BASE", "Program",
    "ParseError", "parse",
    "format_instruction", "format_program",
]
