"""Assembly parser: text → :class:`repro.isa.program.Program`.

Syntax
------
::

    # comment                  ; also a comment
    .data
    buf:    .word 1, 2, 3
    msg:    .asciiz "hello"
    tbl:    .space 64
            .align 4
    .text
    main:
            li    r1, 0
            la    r2, buf          # pseudo: address of data symbol
            lw    r3, 0(r2)
    loop:
            addi  r1, r1, 1
            bne   r1, r3, loop
            (cc1) add r4, r5, r6   # guarded instruction
            (!cc2) mov r7, r8      # guard with negative sense
            halt

Immediates may be decimal, hexadecimal (``0x..``), negative, character
literals (``'a'``), or ``symbol``/``symbol+offset`` referring to a data
symbol.  The parser is two-pass: the data segment is laid out first so code
may reference data symbols defined later in the file.
"""

from __future__ import annotations

import re
from typing import Optional

from .instruction import Guard, Instruction, make
from .opcodes import is_opcode
from .program import Program
from .registers import is_register


class ParseError(ValueError):
    """Raised on malformed assembly, with a line number."""

    def __init__(self, message: str, lineno: int, line: str):
        super().__init__(f"line {lineno}: {message}: {line.strip()!r}")
        self.lineno = lineno
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_GUARD_RE = re.compile(r"^\(\s*(!?)\s*(cc\d+)\s*\)\s*(.*)$")
_MEM_RE = re.compile(r"^(-?\w+)\s*\(\s*(\w+)\s*\)$")
_SYM_OFF_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+)?$")
_STRING_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"$')


def _strip_comment(line: str) -> str:
    # Respect '#' and ';' but not inside string literals.
    out = []
    in_str = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_str = not in_str
        if not in_str and ch in "#;":
            break
        out.append(ch)
        i += 1
    return "".join(out)


def _unescape(s: str) -> bytes:
    return s.encode("utf-8").decode("unicode_escape").encode("latin-1")


def _pending_code_refs(prog: Program) -> list[tuple[int, str]]:
    """Fixup list for ``.word &label`` code references (address, label)."""
    if not hasattr(prog, "_code_refs"):
        prog._code_refs = []  # type: ignore[attr-defined]
    return prog._code_refs  # type: ignore[attr-defined]


def parse(text: str, name: str = "program") -> Program:
    """Parse assembly *text* into a validated :class:`Program`."""
    prog = Program(name=name)
    lines = text.splitlines()

    # ---- pass 1: data segment -------------------------------------------------
    section = "text"
    pending_label: Optional[str] = None
    for lineno, raw in enumerate(lines, 1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line == ".data":
            section = "data"
            continue
        if line == ".text":
            section = "text"
            continue
        if section != "data":
            continue
        m = _LABEL_RE.match(line)
        if m:
            label, rest = m.group(1), m.group(2).strip()
            if pending_label is not None:
                raise ParseError("two consecutive data labels without a "
                                 "directive; attach each label to a directive",
                                 lineno, raw)
            if not rest:
                pending_label = label
                continue
            _parse_data_directive(prog, label, rest, lineno, raw)
        else:
            label, pending_label = pending_label, None
            _parse_data_directive(prog, label, line, lineno, raw)
    if pending_label is not None:
        # A trailing bare label names the end of the data segment.
        prog.data_symbols[pending_label] = prog._data_end()

    # ---- pass 2: text segment ---------------------------------------------------
    section = "text"
    for lineno, raw in enumerate(lines, 1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line == ".data":
            section = "data"
            continue
        if line == ".text":
            section = "text"
            continue
        if section != "text":
            continue
        while True:
            m = _LABEL_RE.match(line)
            if not m or is_opcode(m.group(1)):
                break
            prog.add_label(m.group(1))
            line = m.group(2).strip()
            if not line:
                break
        if not line:
            continue
        ins = _parse_instruction(prog, line, lineno, raw)
        if ins is not None:
            prog.append(ins)

    # Resolve `.word &label` code references now that labels are known, and
    # record them on the Program so simulators re-resolve after transforms.
    for addr, label in _pending_code_refs(prog):
        try:
            index = prog.target_index(label)
        except KeyError:
            raise ParseError(f"undefined code label &{label}", 0, label)
        for i, b in enumerate(int(index).to_bytes(4, "little")):
            prog.data_image[addr + i] = b
        prog.code_refs[addr] = label

    prog.validate()
    return prog


def _parse_data_directive(prog: Program, label: Optional[str], text: str,
                          lineno: int, raw: str) -> None:
    parts = text.split(None, 1)
    directive = parts[0]
    arg = parts[1].strip() if len(parts) > 1 else ""
    if directive == ".word":
        values = []
        fixups = []  # (position within this directive, code label)
        for tok in arg.split(","):
            tok = tok.strip()
            if tok.startswith("&"):
                # Code-label reference (e.g. an interpreter jump table):
                # resolved after the text section is parsed.
                fixups.append((len(values), tok[1:]))
                values.append(0)
            else:
                values.append(_parse_int(tok, lineno, raw))
        start = prog.add_data_word(label, values)
        for off, name in fixups:
            _pending_code_refs(prog).append((start + 4 * off, name))
    elif directive == ".byte":
        values = bytes(_parse_int(v.strip(), lineno, raw) & 0xFF
                       for v in arg.split(","))
        prog.add_data_bytes(label, values)
    elif directive == ".space":
        n = _parse_int(arg, lineno, raw)
        prog.add_data_bytes(label, bytes(n))
    elif directive == ".asciiz":
        m = _STRING_RE.match(arg)
        if not m:
            raise ParseError("bad string literal", lineno, raw)
        prog.add_data_bytes(label, _unescape(m.group(1)) + b"\x00")
    elif directive == ".ascii":
        m = _STRING_RE.match(arg)
        if not m:
            raise ParseError("bad string literal", lineno, raw)
        prog.add_data_bytes(label, _unescape(m.group(1)))
    elif directive == ".align":
        n = _parse_int(arg, lineno, raw)
        end = prog._data_end()
        mask = (1 << n) - 1
        aligned = (end + mask) & ~mask
        if aligned > end:
            prog.add_data_bytes(None, bytes(aligned - end))
        if label is not None:
            prog.data_symbols[label] = aligned
    else:
        raise ParseError(f"unknown data directive {directive!r}", lineno, raw)


def _parse_int(tok: str, lineno: int, raw: str) -> int:
    tok = tok.strip()
    if len(tok) >= 3 and tok.startswith("'") and tok.endswith("'"):
        body = _unescape(tok[1:-1])
        if len(body) != 1:
            raise ParseError(f"bad char literal {tok!r}", lineno, raw)
        return body[0]
    try:
        return int(tok, 0)
    except ValueError:
        raise ParseError(f"bad integer {tok!r}", lineno, raw) from None


def _parse_imm(prog: Program, tok: str, lineno: int, raw: str) -> int:
    """Immediate: integer literal, char, or data-symbol[+offset]."""
    tok = tok.strip()
    m = _SYM_OFF_RE.match(tok)
    if m and m.group(1) in prog.data_symbols:
        base = prog.data_symbols[m.group(1)]
        off = int(m.group(2).replace(" ", "")) if m.group(2) else 0
        return base + off
    return _parse_int(tok, lineno, raw)


def _split_operands(text: str) -> list[str]:
    return [t.strip() for t in text.split(",")] if text.strip() else []


def _parse_instruction(prog: Program, line: str, lineno: int,
                       raw: str) -> Optional[Instruction]:
    guard: Optional[Guard] = None
    m = _GUARD_RE.match(line)
    if m:
        guard = Guard(m.group(2), sense=(m.group(1) != "!"))
        line = m.group(3).strip()
        if not line:
            raise ParseError("guard with no instruction", lineno, raw)

    parts = line.split(None, 1)
    op = parts[0]
    rest = parts[1] if len(parts) > 1 else ""

    # Pseudo-instruction: la rd, symbol
    if op == "la":
        ops = _split_operands(rest)
        if len(ops) != 2:
            raise ParseError("la expects 2 operands", lineno, raw)
        addr = _parse_imm(prog, ops[1], lineno, raw)
        return make("li", ops[0], addr, guard=guard)

    if not is_opcode(op):
        raise ParseError(f"unknown opcode {op!r}", lineno, raw)

    operands = _split_operands(rest)
    resolved: list = []
    for tok in operands:
        if not tok:
            raise ParseError("empty operand", lineno, raw)
        mm = _MEM_RE.match(tok)
        if mm and is_register(mm.group(2)):
            # offset(base): contributes imm then base register
            off_tok = mm.group(1)
            off = (prog.data_symbols[off_tok] if off_tok in prog.data_symbols
                   else _parse_int(off_tok, lineno, raw))
            resolved.append(off)
            resolved.append(mm.group(2))
        elif is_register(tok):
            resolved.append(tok)
        else:
            # Either a label (for control transfers) or an immediate.
            info_needs_label = tok[0].isalpha() or tok[0] in "._$"
            if info_needs_label and tok not in prog.data_symbols:
                resolved.append(tok)  # label, validated later
            else:
                resolved.append(_parse_imm(prog, tok, lineno, raw))
    try:
        return make(op, *resolved, guard=guard)
    except (ValueError, KeyError) as exc:
        raise ParseError(str(exc), lineno, raw) from None
