"""Register namespaces for the MIPS-like ISA.

The machine model mirrors the MIPS R10000 register architecture used by the
paper: 32 general-purpose integer registers (``r0`` hard-wired to zero),
32 floating-point registers, and — to support guarded execution — a bank of
eight condition-code / predicate registers ``cc0`` .. ``cc7`` (the paper's
"extra condition code registers", Section 3).

Registers are represented as interned strings ("r4", "f2", "cc1") so that
instructions remain cheap to copy and hash.  This module centralizes
construction, validation and classification of register names.
"""

from __future__ import annotations

from typing import Iterable

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_CC_REGS = 8

#: The integer register that always reads as zero (MIPS convention).
ZERO_REG = "r0"

#: Conventional stack pointer / return address registers (MIPS o32 style).
SP_REG = "r29"
FP_REG = "r30"
RA_REG = "r31"

INT_REGS: tuple[str, ...] = tuple(f"r{i}" for i in range(NUM_INT_REGS))
FP_REGS: tuple[str, ...] = tuple(f"f{i}" for i in range(NUM_FP_REGS))
CC_REGS: tuple[str, ...] = tuple(f"cc{i}" for i in range(NUM_CC_REGS))

ALL_REGS: frozenset[str] = frozenset(INT_REGS) | frozenset(FP_REGS) | frozenset(CC_REGS)

_INT_SET = frozenset(INT_REGS)
_FP_SET = frozenset(FP_REGS)
_CC_SET = frozenset(CC_REGS)


def is_register(name: str) -> bool:
    """Return True if *name* is a valid register in any namespace."""
    return name in ALL_REGS


def is_int_reg(name: str) -> bool:
    """Return True for general-purpose integer registers r0..r31."""
    return name in _INT_SET


def is_fp_reg(name: str) -> bool:
    """Return True for floating-point registers f0..f31."""
    return name in _FP_SET


def is_cc_reg(name: str) -> bool:
    """Return True for condition-code (predicate) registers cc0..cc7."""
    return name in _CC_SET


def reg_index(name: str) -> int:
    """Return the numeric index of a register within its namespace.

    >>> reg_index("r7")
    7
    >>> reg_index("cc3")
    3
    """
    if name in _CC_SET:
        return int(name[2:])
    if name in _INT_SET or name in _FP_SET:
        return int(name[1:])
    raise ValueError(f"not a register: {name!r}")


def int_reg(index: int) -> str:
    """Return the integer register with the given index (bounds-checked)."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return INT_REGS[index]


def fp_reg(index: int) -> str:
    """Return the FP register with the given index (bounds-checked)."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_REGS[index]


def cc_reg(index: int) -> str:
    """Return the condition-code register with the given index."""
    if not 0 <= index < NUM_CC_REGS:
        raise ValueError(f"cc register index out of range: {index}")
    return CC_REGS[index]


def register_class(name: str) -> str:
    """Classify a register name as ``"int"``, ``"fp"`` or ``"cc"``.

    >>> register_class("r3")
    'int'
    >>> register_class("f0")
    'fp'
    >>> register_class("cc1")
    'cc'
    """
    if name in _INT_SET:
        return "int"
    if name in _FP_SET:
        return "fp"
    if name in _CC_SET:
        return "cc"
    raise ValueError(f"not a register: {name!r}")


class RegisterPool:
    """Allocator handing out free registers of one class.

    Used by the software-renaming transformation (paper Section 1): when an
    instruction is speculated above a branch and its destination is live on
    the other path, the destination is renamed to a register "from the pool
    of free registers (at that time)".

    The pool is seeded with registers *not* used by the program fragment
    being transformed; :meth:`take` removes and returns one, and
    :meth:`release` returns a register to the pool.
    """

    def __init__(self, free: Iterable[str]):
        # Keep deterministic ordering: lowest-index registers first.
        self._free: list[str] = sorted(set(free), key=_reg_sort_key)
        for reg in self._free:
            if not is_register(reg):
                raise ValueError(f"not a register: {reg!r}")

    def __len__(self) -> int:
        return len(self._free)

    def __contains__(self, reg: str) -> bool:
        return reg in self._free

    def take(self) -> str:
        """Remove and return the lowest-numbered free register.

        Raises :class:`IndexError` when the pool is exhausted — callers
        (the speculation pass) treat that as "renaming not possible here".
        """
        if not self._free:
            raise IndexError("register pool exhausted")
        return self._free.pop(0)

    def take_specific(self, reg: str) -> str:
        """Remove and return *reg*; raises KeyError if it is not free."""
        try:
            self._free.remove(reg)
        except ValueError:
            raise KeyError(f"register not free: {reg!r}") from None
        return reg

    def release(self, reg: str) -> None:
        """Return a register to the pool (idempotent)."""
        if not is_register(reg):
            raise ValueError(f"not a register: {reg!r}")
        if reg not in self._free:
            self._free.append(reg)
            self._free.sort(key=_reg_sort_key)

    def peek(self) -> str | None:
        """Return the register :meth:`take` would hand out, or None."""
        return self._free[0] if self._free else None


def _reg_sort_key(name: str) -> tuple[int, int]:
    cls = register_class(name)
    order = {"int": 0, "fp": 1, "cc": 2}[cls]
    return (order, reg_index(name))
