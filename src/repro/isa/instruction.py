"""The :class:`Instruction` object — one MIPS-like operation.

An instruction is the unit every substrate operates on: the parser builds
them, the CFG groups them, the schedulers reorder them, the transforms
rewrite them, and both simulators execute them.

Guarded execution support
-------------------------
Any instruction may carry a *guard*: a ``(cc_register, sense)`` pair.  A
guarded instruction executes only when the condition-code register holds
``sense``; otherwise it is a no-op.  This models the paper's "fictional"
fully-predicated operations (Section 3) that the compiler uses internally and
expands before final code layout on targets with only conditional-move
support (see :func:`repro.transform.ifconvert.lower_guards`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .opcodes import Fmt, OpInfo, opinfo
from .registers import ZERO_REG, is_register

_ids = itertools.count(1)


@dataclass(frozen=True)
class Guard:
    """A guard predicate: execute only if ``reg`` holds ``sense``."""

    reg: str
    sense: bool = True

    def negated(self) -> "Guard":
        return Guard(self.reg, not self.sense)

    def __str__(self) -> str:
        return f"({'' if self.sense else '!'}{self.reg})"


@dataclass
class Instruction:
    """One operation.

    Attributes:
        op: opcode name (must exist in :data:`repro.isa.opcodes.OPCODES`).
        dest: destination register or None.
        srcs: tuple of source registers (order is significant per format).
        imm: immediate operand (integers; also holds FP literals for ``li``).
        target: label name for control transfers.
        guard: optional :class:`Guard` predicate.
        uid: unique id, stable across copies made with :meth:`clone`
            (pass ``fresh_uid=True`` to renumber).
        ann: free-form annotation dictionary used by passes (e.g. the
            speculation pass marks inserted copies, the profiler keys branch
            records by the branch's uid).
    """

    op: str
    dest: Optional[str] = None
    srcs: tuple[str, ...] = ()
    imm: Optional[int] = None
    target: Optional[str] = None
    guard: Optional[Guard] = None
    uid: int = field(default_factory=lambda: next(_ids))
    ann: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Cache the opcode metadata: simulators consult it per dynamic
        # instruction, and the dict lookup dominated the profile.
        self._info = opinfo(self.op)  # also validates the opcode
        if self.dest is not None and not is_register(self.dest):
            raise ValueError(f"bad dest register {self.dest!r} in {self.op}")
        for s in self.srcs:
            if not is_register(s):
                raise ValueError(f"bad source register {s!r} in {self.op}")

    # -- static properties ---------------------------------------------------

    @property
    def info(self) -> OpInfo:
        return self._info

    @property
    def is_branch(self) -> bool:
        return self.info.is_branch

    @property
    def is_likely(self) -> bool:
        return self.info.is_likely

    @property
    def is_jump(self) -> bool:
        return self.info.is_jump

    @property
    def is_control(self) -> bool:
        return self.info.is_control

    @property
    def is_load(self) -> bool:
        return self.info.is_load

    @property
    def is_store(self) -> bool:
        return self.info.is_store

    @property
    def is_mem(self) -> bool:
        return self.info.is_load or self.info.is_store

    @property
    def is_halt(self) -> bool:
        return self.info.is_halt

    @property
    def is_guarded(self) -> bool:
        return self.guard is not None

    @property
    def is_cmov(self) -> bool:
        """True for conditional moves (partial writes of their destination)."""
        return self.op in ("cmovt", "cmovf", "movz", "movn")

    # -- def/use ---------------------------------------------------------------

    def defs(self) -> tuple[str, ...]:
        """Registers written by this instruction.

        Writes to ``r0`` are discarded by the machine and reported as no
        defs, so dataflow treats ``r0`` correctly as never-defined.
        """
        if self.dest is None or self.dest == ZERO_REG:
            return ()
        return (self.dest,)

    def uses(self) -> tuple[str, ...]:
        """Registers read by this instruction, including the guard register
        and — for conditional moves — the destination (its prior value may
        survive)."""
        regs = list(self.srcs)
        if self.is_cmov and self.dest is not None and self.dest != ZERO_REG:
            # A cmov that does not fire preserves dest: dest is live-in.
            regs.append(self.dest)
        if self.guard is not None:
            regs.append(self.guard.reg)
        return tuple(regs)

    def registers(self) -> Iterator[str]:
        """All registers mentioned (defs + uses), with duplicates."""
        yield from self.defs()
        yield from self.uses()

    # -- rewriting ---------------------------------------------------------------

    def clone(self, *, fresh_uid: bool = False, **overrides: Any) -> "Instruction":
        """Copy this instruction, optionally overriding fields.

        Annotations are shallow-copied so passes can mark clones
        independently.
        """
        kwargs: dict[str, Any] = dict(
            op=self.op, dest=self.dest, srcs=self.srcs, imm=self.imm,
            target=self.target, guard=self.guard, uid=self.uid,
            ann=dict(self.ann),
        )
        kwargs.update(overrides)
        if fresh_uid:
            kwargs["uid"] = next(_ids)
        return Instruction(**kwargs)

    def with_renamed_def(self, new_dest: str) -> "Instruction":
        """Clone with the destination renamed (software renaming)."""
        if self.dest is None:
            raise ValueError(f"instruction has no destination: {self}")
        return self.clone(dest=new_dest, fresh_uid=True)

    def with_substituted_uses(self, mapping: dict[str, str]) -> "Instruction":
        """Clone with source registers rewritten through *mapping*.

        The guard register and the implicit cmov dest-use are NOT rewritten:
        forward substitution only touches data sources.
        """
        new_srcs = tuple(mapping.get(s, s) for s in self.srcs)
        if new_srcs == self.srcs:
            return self
        return self.clone(srcs=new_srcs, fresh_uid=True)

    def guarded(self, guard: Guard) -> "Instruction":
        """Clone with a guard attached (conjoined is not supported — the
        if-converter materializes conjunctions into a fresh cc register)."""
        if self.guard is not None:
            raise ValueError(f"instruction already guarded: {self}")
        return self.clone(guard=guard, fresh_uid=True)

    # -- printing -------------------------------------------------------------

    def __str__(self) -> str:
        from .printer import format_instruction

        return format_instruction(self)

    def __repr__(self) -> str:
        return f"<I{self.uid} {self}>"


# -- constructors --------------------------------------------------------------


def make(op: str, *operands: Any, guard: Optional[Guard] = None,
         **ann: Any) -> Instruction:
    """Build an instruction from positional operands in assembly order.

    The operand order matches the textual assembly for each format, e.g.::

        make("add", "r1", "r2", "r3")      # add r1, r2, r3
        make("addi", "r1", "r2", 4)        # addi r1, r2, 4
        make("lw", "r1", 8, "r2")          # lw r1, 8(r2)
        make("sw", "r1", 8, "r2")          # sw r1, 8(r2)
        make("beq", "r1", "r2", "L1")      # beq r1, r2, L1
        make("j", "L1")
        make("cmpeq", "cc0", "r1", "r2")
        make("cmovt", "r1", "r2", "cc0")
    """
    info = opinfo(op)
    fmt = info.fmt
    d: Optional[str] = None
    srcs: tuple[str, ...] = ()
    imm: Optional[int] = None
    target: Optional[str] = None

    def need(n: int) -> None:
        if len(operands) != n:
            raise ValueError(f"{op} ({fmt.value}) expects {n} operands, got "
                             f"{len(operands)}: {operands!r}")

    if fmt == Fmt.RRR:
        need(3); d, srcs = operands[0], (operands[1], operands[2])
    elif fmt == Fmt.RRI:
        need(3); d, srcs, imm = operands[0], (operands[1],), int(operands[2])
    elif fmt == Fmt.RI:
        need(2); d, imm = operands[0], int(operands[1])
    elif fmt == Fmt.RR:
        need(2); d, srcs = operands[0], (operands[1],)
    elif fmt == Fmt.LOAD:
        need(3); d, imm, srcs = operands[0], int(operands[1]), (operands[2],)
    elif fmt == Fmt.STORE:
        need(3); imm = int(operands[1]); srcs = (operands[0], operands[2])
    elif fmt == Fmt.BRANCH2:
        need(3); srcs, target = (operands[0], operands[1]), operands[2]
    elif fmt == Fmt.BRANCH1:
        need(2); srcs, target = (operands[0],), operands[1]
    elif fmt == Fmt.JUMP:
        need(1); target = operands[0]
        if info.is_call:
            d = "r31"
    elif fmt == Fmt.JR:
        need(1); srcs = (operands[0],)
    elif fmt == Fmt.JALR:
        need(2); d, srcs = operands[0], (operands[1],)
    elif fmt == Fmt.CMP:
        if op == "cmpi":
            need(3); d, srcs, imm = operands[0], (operands[1],), int(operands[2])
        else:
            need(3); d, srcs = operands[0], (operands[1], operands[2])
    elif fmt == Fmt.CCLOGIC2:
        need(3); d, srcs = operands[0], (operands[1], operands[2])
    elif fmt == Fmt.CCLOGIC1:
        need(2); d, srcs = operands[0], (operands[1],)
    elif fmt == Fmt.CMOVCC:
        need(3); d, srcs = operands[0], (operands[1], operands[2])
    elif fmt == Fmt.CMOVR:
        need(3); d, srcs = operands[0], (operands[1], operands[2])
    elif fmt == Fmt.NONE:
        need(0)
    else:  # pragma: no cover - exhaustive
        raise AssertionError(f"unhandled format {fmt}")

    return Instruction(op=op, dest=d, srcs=srcs, imm=imm, target=target,
                       guard=guard, ann=dict(ann))
