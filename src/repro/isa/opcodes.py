"""Opcode table for the MIPS-like ISA.

Each opcode carries:

* ``fmt`` — the operand format used by the parser/printer and by generic
  def/use extraction (see :mod:`repro.isa.instruction`);
* ``unit`` — the functional-unit class that executes it in the timing
  simulator (``alu``, ``shift``, ``mem``, ``branch``, ``fpadd``, ``fpmul``,
  ``fpdiv``, ``none``);
* ``latency_class`` — which row of the paper's Table 2 supplies its latency
  (``alu`` 1, ``ldst`` 2, ``sft`` 1, ``fpadd``/``fpmul``/``fpdiv`` 3).

Branch-likely opcodes (``beql`` etc.) mirror the R10000 instructions the
paper leans on: they are *always predicted taken*, consume no branch-history
counter and no branch-target-buffer entry (paper Section 3).  One deliberate
simplification, documented in DESIGN.md: our ISA has no branch delay slots,
so the "annulled delay slot" aspect of branch-likelies is not modeled — only
their prediction semantics, which is what the paper's evaluation measures.

Guarded ("fictional", paper Section 3) instructions are not separate opcodes:
any instruction may carry a guard predicate; see
:class:`repro.isa.instruction.Instruction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Fmt(str, Enum):
    """Operand formats.

    The format string determines how ``Instruction.dest``, ``srcs``, ``imm``
    and ``target`` are populated and printed.
    """

    RRR = "rrr"          # op rd, rs, rt
    RRI = "rri"          # op rd, rs, imm
    RI = "ri"            # op rd, imm
    RR = "rr"            # op rd, rs
    LOAD = "load"        # op rd, imm(rs)
    STORE = "store"      # op rt, imm(rs)      (rt is a source)
    BRANCH2 = "branch2"  # op rs, rt, label
    BRANCH1 = "branch1"  # op rs, label
    JUMP = "jump"        # op label
    JR = "jr"            # op rs
    JALR = "jalr"        # op rd, rs
    CMP = "cmp"          # op cc, rs, rt       (cc destination)
    CCLOGIC2 = "cclogic2"  # op cc, cc, cc
    CCLOGIC1 = "cclogic1"  # op cc, cc
    CMOVCC = "cmovcc"    # op rd, rs, cc       (move rs->rd if cc true/false)
    CMOVR = "cmovr"      # op rd, rs, rt       (move rs->rd if rt ==/!= 0)
    NONE = "none"        # op


class Unit(str, Enum):
    """Functional-unit classes (R10000-style, paper Section 6)."""

    ALU = "alu"
    SHIFT = "shift"
    MEM = "mem"
    BRANCH = "branch"
    FPADD = "fpadd"
    FPMUL = "fpmul"
    FPDIV = "fpdiv"
    NONE = "none"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    name: str
    fmt: Fmt
    unit: Unit
    latency_class: str
    is_branch: bool = False
    is_likely: bool = False
    is_jump: bool = False
    is_load: bool = False
    is_store: bool = False
    is_call: bool = False
    is_return: bool = False
    is_halt: bool = False
    is_fence: bool = False

    @property
    def is_control(self) -> bool:
        """True for any control-transfer instruction."""
        return self.is_branch or self.is_jump or self.is_halt

    @property
    def is_conditional_branch(self) -> bool:
        return self.is_branch

    @property
    def has_btb_entry(self) -> bool:
        """Whether the branch can live in the branch target buffer.

        Per the paper (Section 6, "perfect branch prediction" discussion):
        only branches whose target address is absolute are registered in the
        BTB — subroutine calls through registers, returns and
        register-relative jumps are not.  Branch-likelies are always
        predicted taken and also hold no BTB entry.
        """
        if self.is_likely:
            return False
        if self.is_branch:
            return True
        # Direct jumps/calls have absolute targets.
        return self.is_jump and self.fmt == Fmt.JUMP


_TABLE: dict[str, OpInfo] = {}


def _op(name: str, fmt: Fmt, unit: Unit, lat: str, **flags) -> None:
    if name in _TABLE:
        raise ValueError(f"duplicate opcode {name}")
    _TABLE[name] = OpInfo(name=name, fmt=fmt, unit=unit, latency_class=lat, **flags)


# --- integer ALU -----------------------------------------------------------
for _name in ("add", "sub", "and", "or", "xor", "nor", "mul", "div", "rem",
              "slt", "sltu", "seq", "sne", "sge", "sgt", "sle"):
    _op(_name, Fmt.RRR, Unit.ALU, "alu")
for _name in ("addi", "subi", "andi", "ori", "xori", "slti", "muli"):
    _op(_name, Fmt.RRI, Unit.ALU, "alu")
_op("li", Fmt.RI, Unit.ALU, "alu")
_op("lui", Fmt.RI, Unit.ALU, "alu")
_op("mov", Fmt.RR, Unit.ALU, "alu")
_op("neg", Fmt.RR, Unit.ALU, "alu")
_op("not", Fmt.RR, Unit.ALU, "alu")

# --- shifter ---------------------------------------------------------------
for _name in ("sll", "srl", "sra"):
    _op(_name, Fmt.RRI, Unit.SHIFT, "sft")
for _name in ("sllv", "srlv", "srav"):
    _op(_name, Fmt.RRR, Unit.SHIFT, "sft")

# --- memory ----------------------------------------------------------------
for _name in ("lw", "lb", "lbu", "lh", "lhu"):
    _op(_name, Fmt.LOAD, Unit.MEM, "ldst", is_load=True)
for _name in ("sw", "sb", "sh"):
    _op(_name, Fmt.STORE, Unit.MEM, "ldst", is_store=True)

# --- conditional branches (and branch-likely variants) ---------------------
for _name in ("beq", "bne"):
    _op(_name, Fmt.BRANCH2, Unit.BRANCH, "alu", is_branch=True)
    _op(_name + "l", Fmt.BRANCH2, Unit.BRANCH, "alu", is_branch=True, is_likely=True)
for _name in ("blez", "bgtz", "bltz", "bgez", "beqz", "bnez"):
    _op(_name, Fmt.BRANCH1, Unit.BRANCH, "alu", is_branch=True)
    _op(_name + "l", Fmt.BRANCH1, Unit.BRANCH, "alu", is_branch=True, is_likely=True)
# Branch on condition-code register (predicate) true/false.
_op("bct", Fmt.BRANCH1, Unit.BRANCH, "alu", is_branch=True)
_op("bcf", Fmt.BRANCH1, Unit.BRANCH, "alu", is_branch=True)
_op("bctl", Fmt.BRANCH1, Unit.BRANCH, "alu", is_branch=True, is_likely=True)
_op("bcfl", Fmt.BRANCH1, Unit.BRANCH, "alu", is_branch=True, is_likely=True)

# --- jumps -----------------------------------------------------------------
_op("j", Fmt.JUMP, Unit.BRANCH, "alu", is_jump=True)
_op("jal", Fmt.JUMP, Unit.BRANCH, "alu", is_jump=True, is_call=True)
_op("jr", Fmt.JR, Unit.BRANCH, "alu", is_jump=True, is_return=True)
_op("jalr", Fmt.JALR, Unit.BRANCH, "alu", is_jump=True, is_call=True)

# --- condition-code (predicate) definition and logic ------------------------
for _name in ("cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge"):
    _op(_name, Fmt.CMP, Unit.ALU, "alu")
_op("cmpi", Fmt.CMP, Unit.ALU, "alu")  # cmpi cc, rs, imm handled by parser sugar
_op("cand", Fmt.CCLOGIC2, Unit.ALU, "alu")
_op("cor", Fmt.CCLOGIC2, Unit.ALU, "alu")
_op("cxor", Fmt.CCLOGIC2, Unit.ALU, "alu")
_op("cnot", Fmt.CCLOGIC1, Unit.ALU, "alu")
_op("cmov", Fmt.CCLOGIC1, Unit.ALU, "alu")  # copy one cc to another

# --- conditional moves (the R10000-style limited predication support) -------
_op("cmovt", Fmt.CMOVCC, Unit.ALU, "alu")   # rd <- rs if cc is true
_op("cmovf", Fmt.CMOVCC, Unit.ALU, "alu")   # rd <- rs if cc is false
_op("movz", Fmt.CMOVR, Unit.ALU, "alu")     # rd <- rs if rt == 0
_op("movn", Fmt.CMOVR, Unit.ALU, "alu")     # rd <- rs if rt != 0

# --- floating point ----------------------------------------------------------
_op("fadd", Fmt.RRR, Unit.FPADD, "fpadd")
_op("fsub", Fmt.RRR, Unit.FPADD, "fpadd")
_op("fmul", Fmt.RRR, Unit.FPMUL, "fpmul")
_op("fdiv", Fmt.RRR, Unit.FPDIV, "fpdiv")
_op("fmov", Fmt.RR, Unit.FPADD, "fpadd")
_op("fneg", Fmt.RR, Unit.FPADD, "fpadd")
for _name in ("fcmpeq", "fcmplt", "fcmple"):
    _op(_name, Fmt.CMP, Unit.FPADD, "fpadd")
_op("lwf", Fmt.LOAD, Unit.MEM, "ldst", is_load=True)
_op("swf", Fmt.STORE, Unit.MEM, "ldst", is_store=True)
_op("cvtif", Fmt.RR, Unit.FPADD, "fpadd")   # int reg -> fp reg
_op("cvtfi", Fmt.RR, Unit.FPADD, "fpadd")   # fp reg -> int reg (truncate)

# --- misc --------------------------------------------------------------------
_op("nop", Fmt.NONE, Unit.NONE, "alu")
_op("halt", Fmt.NONE, Unit.NONE, "alu", is_halt=True)
# Speculation barrier: architecturally a no-op, but the timing simulator
# refuses to dispatch past it until every older instruction has completed
# (plus a configurable drain penalty, ``MachineConfig.fence_stall``).  The
# safe-speculative compilation scheme inserts it in front of hoisted loads
# that the spectre analysis flags (see :mod:`repro.robust.spectre`).
_op("fence", Fmt.NONE, Unit.NONE, "alu", is_fence=True)

OPCODES: dict[str, OpInfo] = dict(_TABLE)


def opinfo(name: str) -> OpInfo:
    """Look up the :class:`OpInfo` for an opcode name.

    >>> opinfo("beql").is_likely
    True
    """
    try:
        return OPCODES[name]
    except KeyError:
        raise KeyError(f"unknown opcode: {name!r}") from None


def is_opcode(name: str) -> bool:
    """True when *name* is a defined opcode."""
    return name in OPCODES


#: Map a plain conditional branch opcode to its branch-likely twin.
LIKELY_OF: dict[str, str] = {
    name: name + "l"
    for name in ("beq", "bne", "blez", "bgtz", "bltz", "bgez", "beqz", "bnez")
}
LIKELY_OF["bct"] = "bctl"
LIKELY_OF["bcf"] = "bcfl"

#: Inverse: branch-likely opcode -> plain opcode.
PLAIN_OF: dict[str, str] = {v: k for k, v in LIKELY_OF.items()}

#: Map a conditional branch to the branch with the opposite condition.
NEGATED_BRANCH: dict[str, str] = {
    "beq": "bne", "bne": "beq",
    "blez": "bgtz", "bgtz": "blez",
    "bltz": "bgez", "bgez": "bltz",
    "beqz": "bnez", "bnez": "beqz",
    "bct": "bcf", "bcf": "bct",
}
NEGATED_BRANCH.update({LIKELY_OF[k]: LIKELY_OF[v] for k, v in NEGATED_BRANCH.items()
                       if k in LIKELY_OF and v in LIKELY_OF})

#: Map a conditional branch opcode to the compare opcode computing its
#: condition into a cc register (used by if-conversion).
BRANCH_TO_CMP: dict[str, str] = {
    "beq": "cmpeq", "bne": "cmpne",
    "beql": "cmpeq", "bnel": "cmpne",
}
