"""The :class:`Program` container: an assembly unit with labels and data.

A program is a flat list of :class:`~repro.isa.instruction.Instruction`
objects plus two symbol tables:

* ``labels`` — code labels, mapping name to instruction index (a label may
  sit one-past-the-end, e.g. an exit label after the last instruction);
* ``data_symbols`` / ``data_image`` — a static data segment, built by the
  parser's ``.data`` directives, loaded into memory before execution.

Programs are the common currency of the repository: the parser produces
them, transforms rewrite them (via CFG reassembly), and both simulators
consume them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .instruction import Instruction

#: Default base address of the data segment (code addresses are indices).
DATA_BASE = 0x1000_0000


@dataclass
class Program:
    """An assembly program.

    Instruction "addresses" are simply list indices; the simulators use the
    index as the PC.  The data segment lives at :data:`DATA_BASE` and above.
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data_symbols: dict[str, int] = field(default_factory=dict)
    data_image: dict[int, int] = field(default_factory=dict)  # addr -> byte
    #: data words holding CODE addresses (interpreter jump tables): the
    #: simulator re-resolves these against the current label positions at
    #: load time, so re-linearized programs keep working.
    code_refs: dict[int, str] = field(default_factory=dict)
    name: str = "program"
    _label_counter: itertools.count = field(
        default_factory=lambda: itertools.count(), repr=False)

    # -- basic container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    # -- construction --------------------------------------------------------------

    def append(self, instr: Instruction) -> None:
        self.instructions.append(instr)

    def extend(self, instrs: Iterable[Instruction]) -> None:
        self.instructions.extend(instrs)

    def add_label(self, name: str, index: Optional[int] = None) -> None:
        """Attach label *name* at *index* (default: current end)."""
        if name in self.labels:
            raise ValueError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions) if index is None else index

    def fresh_label(self, prefix: str = "L") -> str:
        """Return a label name not yet present in the program."""
        while True:
            name = f".{prefix}{next(self._label_counter)}"
            if name not in self.labels:
                return name

    def add_data_word(self, symbol: Optional[str], values: Iterable[int],
                      addr: Optional[int] = None) -> int:
        """Append 32-bit words to the data segment; returns the start address."""
        start = addr if addr is not None else self._data_end()
        a = start
        for v in values:
            for b in int(v & 0xFFFF_FFFF).to_bytes(4, "little"):
                self.data_image[a] = b
                a += 1
        if symbol is not None:
            if symbol in self.data_symbols:
                raise ValueError(f"duplicate data symbol {symbol!r}")
            self.data_symbols[symbol] = start
        return start

    def add_data_bytes(self, symbol: Optional[str], data: bytes,
                       addr: Optional[int] = None) -> int:
        """Append raw bytes to the data segment; returns the start address."""
        start = addr if addr is not None else self._data_end()
        for i, b in enumerate(data):
            self.data_image[start + i] = b
        if symbol is not None:
            if symbol in self.data_symbols:
                raise ValueError(f"duplicate data symbol {symbol!r}")
            self.data_symbols[symbol] = start
        return start

    def _data_end(self) -> int:
        if not self.data_image:
            return DATA_BASE
        # Word-align the next free address.
        end = max(self.data_image) + 1
        return (end + 3) & ~3

    # -- queries --------------------------------------------------------------------

    def target_index(self, label: str) -> int:
        """Resolve a code label to an instruction index."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"undefined label {label!r}") from None

    def labels_at(self, index: int) -> list[str]:
        """All labels attached to instruction index *index* (sorted)."""
        return sorted(name for name, i in self.labels.items() if i == index)

    def branch_targets(self) -> dict[int, int]:
        """Map from branch/jump instruction index to its target index."""
        out: dict[int, int] = {}
        for i, ins in enumerate(self.instructions):
            if ins.target is not None:
                out[i] = self.target_index(ins.target)
        return out

    def find_label_of_uid(self, uid: int) -> Optional[int]:
        """Index of the instruction with the given uid, or None."""
        for i, ins in enumerate(self.instructions):
            if ins.uid == uid:
                return i
        return None

    def registers_used(self) -> set[str]:
        """Every register mentioned anywhere in the program."""
        regs: set[str] = set()
        for ins in self.instructions:
            regs.update(ins.registers())
        return regs

    # -- validation -------------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raises ValueError on problems.

        * every control-transfer target resolves to a label in range;
        * labels point inside [0, len] (one-past-end allowed);
        * the program ends in an unconditional control transfer or halt
          (so execution cannot fall off the end).
        """
        n = len(self.instructions)
        for name, idx in self.labels.items():
            if not 0 <= idx <= n:
                raise ValueError(f"label {name!r} out of range: {idx}")
        for i, ins in enumerate(self.instructions):
            if ins.target is not None:
                if ins.target not in self.labels:
                    raise ValueError(
                        f"instruction {i} ({ins.op}) targets undefined "
                        f"label {ins.target!r}")
                if self.labels[ins.target] > n:
                    raise ValueError(f"target of {ins.op} out of range")
        if n:
            last = self.instructions[-1]
            if not (last.is_halt or (last.is_jump and not last.info.is_return)
                    or last.op == "jr"):
                raise ValueError(
                    "program must end in halt or an unconditional jump; "
                    f"ends in {last.op!r}")

    def copy(self) -> "Program":
        """Deep-enough copy: fresh instruction list and symbol tables.

        Instruction objects are cloned (same uids) so annotation edits on
        the copy do not leak back.
        """
        p = Program(
            instructions=[ins.clone() for ins in self.instructions],
            labels=dict(self.labels),
            data_symbols=dict(self.data_symbols),
            data_image=dict(self.data_image),
            code_refs=dict(self.code_refs),
            name=self.name,
        )
        return p

    def to_dict(self) -> dict:
        """JSON-serializable form, reconstructible by :meth:`from_dict`.

        The instruction stream and labels travel as parseable assembly text
        (the printer/parser round-trip); the data segment, data symbols and
        code references — which the printer does not emit — travel as
        explicit tables.  Instruction uids are *not* preserved (they are
        process-local identities, regenerated on parse).
        """
        from .printer import format_program

        return {
            "name": self.name,
            "text": format_program(self),
            "data_symbols": dict(self.data_symbols),
            "data_image": {str(a): b
                           for a, b in sorted(self.data_image.items())},
            "code_refs": {str(a): label
                          for a, label in sorted(self.code_refs.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Program":
        """Inverse of :meth:`to_dict`."""
        from .parser import parse

        prog = parse(d["text"], name=d["name"])
        prog.data_symbols = dict(d["data_symbols"])
        prog.data_image = {int(a): int(b)
                           for a, b in d["data_image"].items()}
        prog.code_refs = {int(a): label
                          for a, label in d["code_refs"].items()}
        return prog

    def __str__(self) -> str:
        from .printer import format_program

        return format_program(self)
