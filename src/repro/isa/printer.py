"""Textual formatting of instructions and programs.

The output format round-trips through :mod:`repro.isa.parser`:

    parse(format_program(p)) is semantically identical to p

(uids and annotations are not serialized).
"""

from __future__ import annotations

from .opcodes import Fmt
from .instruction import Instruction
from .program import Program


def format_instruction(ins: Instruction) -> str:
    """Render one instruction in assembly syntax (without label)."""
    fmt = ins.info.fmt
    op = ins.op
    if fmt == Fmt.RRR:
        body = f"{op} {ins.dest}, {ins.srcs[0]}, {ins.srcs[1]}"
    elif fmt == Fmt.RRI:
        body = f"{op} {ins.dest}, {ins.srcs[0]}, {ins.imm}"
    elif fmt == Fmt.RI:
        body = f"{op} {ins.dest}, {ins.imm}"
    elif fmt == Fmt.RR:
        body = f"{op} {ins.dest}, {ins.srcs[0]}"
    elif fmt == Fmt.LOAD:
        body = f"{op} {ins.dest}, {ins.imm}({ins.srcs[0]})"
    elif fmt == Fmt.STORE:
        body = f"{op} {ins.srcs[0]}, {ins.imm}({ins.srcs[1]})"
    elif fmt == Fmt.BRANCH2:
        body = f"{op} {ins.srcs[0]}, {ins.srcs[1]}, {ins.target}"
    elif fmt == Fmt.BRANCH1:
        body = f"{op} {ins.srcs[0]}, {ins.target}"
    elif fmt == Fmt.JUMP:
        body = f"{op} {ins.target}"
    elif fmt == Fmt.JR:
        body = f"{op} {ins.srcs[0]}"
    elif fmt == Fmt.JALR:
        body = f"{op} {ins.dest}, {ins.srcs[0]}"
    elif fmt == Fmt.CMP:
        if op == "cmpi":
            body = f"{op} {ins.dest}, {ins.srcs[0]}, {ins.imm}"
        else:
            body = f"{op} {ins.dest}, {ins.srcs[0]}, {ins.srcs[1]}"
    elif fmt in (Fmt.CCLOGIC2, Fmt.CMOVCC, Fmt.CMOVR):
        body = f"{op} {ins.dest}, {ins.srcs[0]}, {ins.srcs[1]}"
    elif fmt == Fmt.CCLOGIC1:
        body = f"{op} {ins.dest}, {ins.srcs[0]}"
    elif fmt == Fmt.NONE:
        body = op
    else:  # pragma: no cover - exhaustive
        raise AssertionError(f"unhandled format {fmt}")
    if ins.guard is not None:
        return f"{ins.guard} {body}"
    return body


def format_program(prog: Program, *, show_uids: bool = False) -> str:
    """Render a whole program, labels included, as parseable assembly."""
    lines: list[str] = []
    if prog.data_symbols or prog.data_image:
        lines.append(".data")
        for sym in sorted(prog.data_symbols, key=prog.data_symbols.get):
            lines.append(f"# {sym} @ 0x{prog.data_symbols[sym]:08x}")
        lines.append(".text")
    by_index: dict[int, list[str]] = {}
    for name, idx in prog.labels.items():
        by_index.setdefault(idx, []).append(name)
    for idx in by_index:
        by_index[idx].sort()
    for i, ins in enumerate(prog.instructions):
        for name in by_index.get(i, ()):
            lines.append(f"{name}:")
        text = format_instruction(ins)
        if show_uids:
            lines.append(f"    {text:<40} # uid={ins.uid}")
        else:
            lines.append(f"    {text}")
    for name in by_index.get(len(prog.instructions), ()):
        lines.append(f"{name}:")
    return "\n".join(lines) + "\n"
