"""repro — reproduction of Srinivas & Nicolau (IPPS 1998), "Analyzing the
Individual/Combined Effects of Speculative and Guarded Execution on a
Superscalar Architecture".

Public API tour
---------------
ISA + programs        repro.isa          (parse, Program, Instruction)
Control flow          repro.cfg          (build_cfg, LoopForest, liveness)
Machine               repro.sim          (FunctionalSim, TimingSim, simulate)
Feedback metrics      repro.profilefb    (ProfileDB, BranchHistory, classify)
Scheduling            repro.sched        (list_schedule, schedule_region)
Transformations       repro.transform    (speculation, if-conversion,
                                          branch-likely, branch splitting)
The contribution      repro.core         (cost model, Figure 6 algorithm,
                                          compile_baseline/compile_proposed)
Workloads             repro.workloads    (compress/espresso/xlisp/grep kernels)
Experiments           repro.eval         (scheme runner, Tables 1-4)
Observability         repro.obs          (tracing spans, metrics, profiling)
Unified facade        repro.api          (Session: one front door for
                                          benchmark/suite/sweep/fuzz runs)

Quickstart::

    from repro import compile_baseline, compile_proposed, simulate, r10k_config
    from repro.workloads import compress_program

    prog = compress_program()
    base = compile_baseline(prog).program
    prop = compile_proposed(prog).program
    print(simulate(base, r10k_config("twobit")).ipc)
    print(simulate(prop, r10k_config("twobit")).ipc)
"""

from .isa import Instruction, Program, parse
from .sim import (
    FunctionalSim, MachineConfig, R10K, SimStats, TimingSim, r10k_config,
    run_program, simulate,
)
from .profilefb import BranchHistory, ProfileDB
from .core import (
    DEFAULT_HEURISTICS, FeedbackHeuristics, compile_baseline,
    compile_proposed, compile_variant, decide,
)
from .api import Session

__version__ = "1.0.0"

__all__ = [
    "Instruction", "Program", "parse",
    "FunctionalSim", "MachineConfig", "R10K", "SimStats", "TimingSim",
    "r10k_config", "run_program", "simulate",
    "BranchHistory", "ProfileDB",
    "DEFAULT_HEURISTICS", "FeedbackHeuristics", "compile_baseline",
    "compile_proposed", "compile_variant", "decide",
    "Session",
    "__version__",
]
