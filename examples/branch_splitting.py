#!/usr/bin/env python3
"""Branch splitting walk-through — the paper's Figures 3, 4, 5 and 7.

Builds a loop whose forward branch follows the paper's phased pattern
(taken for the first 40 % of iterations, toggling for 20 %, not-taken for
the final 40 %), then:

1. profiles it and prints the branch outcome bit vector and its
   segmentation (Section 5's feedback metrics);
2. shows the analytic cost model reproducing the paper's exact numbers
   (3100 / 2900 / 3600 / 2756 cycles, Figures 2 and 4);
3. applies the split-branch transformation (Figure 5's sectioned form) and
   prints the instrumented code;
4. co-simulates original vs split code to show both semantics preservation
   and the prediction-accuracy improvement.

Usage:  python examples/branch_splitting.py
"""

from repro import r10k_config
from repro.cfg import LoopForest, build_cfg
from repro.core.cost_model import (
    PAPER_FIG2, PAPER_FIG4_PLAN, paper_fig4_cost, split_cost,
)
from repro.profilefb import ProfileDB, segment_history
from repro.sim import FunctionalSim, TimingSim
from repro.transform import split_from_profile
from repro.workloads import phased_loop_program


def main() -> None:
    print("=" * 72)
    print("1. The analytic model (paper Figures 2 and 4)")
    print("=" * 72)
    d = PAPER_FIG2
    print(f"baseline acyclic schedule        : {d.baseline_cost():7.0f} cycles")
    print(f"balanced speculation (Fig 2c)    : {d.speculate_balanced(2):7.0f} cycles")
    print(f"guarded execution (Fig 2d)       : {d.guarded_cost():7.0f} cycles  <- worse!")
    print(f"segment-split schedule (Fig 4)   : {paper_fig4_cost():7.0f} cycles  <- best")

    print()
    print("=" * 72)
    print("2. Profiling a real phased loop")
    print("=" * 72)
    prog = phased_loop_program([(40, "taken"), (20, "alternate"),
                                (40, "nottaken")], body_ops=3)
    db = ProfileDB.from_run(prog)
    target = next(bp for bp in db.branches.values()
                  if bp.executions == 100
                  and abs(bp.classification.frequency - 0.5) < 1e-9)
    print(f"branch at pc={target.pc}: {target.instr}")
    print(f"outcome bit vector ({target.executions} executions):")
    print(f"  {target.history.as_string()}")
    print(f"frequency={target.classification.frequency:.2f}  "
          f"toggle={target.classification.toggle_factor:.2f}  "
          f"class={target.classification.branch_class.value}")
    for seg in segment_history(target.history, window=5):
        print(f"  segment [{seg.start:3d},{seg.end:3d}) "
              f"{seg.kind:<9} freq={seg.freq:.2f}")

    print()
    print("=" * 72)
    print("3. Applying the split (Figure 5 sectioned codegen)")
    print("=" * 72)
    cfg = build_cfg(prog)
    forest = LoopForest(cfg)
    # Find the CFG block holding the profiled branch.
    block = next(bb.bid for bb in cfg.blocks
                 if bb.terminator is not None
                 and bb.terminator.uid == target.uid)
    report = split_from_profile(cfg, forest, block, db)
    print(f"counter register: {report.counter}, condition cc: {report.cond_cc}")
    print(f"segment boundaries: {report.boundaries}")
    print(f"branch-likelies emitted: {report.likely_branches}")
    split_prog = cfg.to_program()
    print(f"\ninstrumented program grew {len(prog)} -> {len(split_prog)} "
          f"instructions (one body clone per segment)")

    print()
    print("=" * 72)
    print("4. Co-simulation: semantics + prediction")
    print("=" * 72)
    a = FunctionalSim(prog)
    a.run()
    b = FunctionalSim(split_prog)
    b.run()
    same = all(a.regs[f"r{i}"] == b.regs[f"r{i}"] for i in (10, 11))
    print(f"observable registers identical: {same}")

    for label, p in (("original", prog), ("split", split_prog)):
        st = TimingSim(r10k_config("twobit")).run_program(p)
        print(f"{label:<9} accuracy={st.predictor.accuracy * 100:6.2f}%  "
              f"mispredicts={st.mispredict_events:4d}  IPC={st.ipc:.3f}")


if __name__ == "__main__":
    main()
