#!/usr/bin/env python3
"""Quickstart: compile a workload two ways and compare schemes.

Runs the `espresso` kernel through the baseline and the paper's proposed
compilation pipeline, simulates both on the R10000-like machine under
2-bit and perfect branch prediction, and prints the comparison — a
miniature of the paper's Table 4.

Usage:  python examples/quickstart.py [scale]
"""

import sys

from repro import compile_baseline, compile_proposed, r10k_config, simulate
from repro.workloads import espresso_program


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    prog = espresso_program(m=max(16, int(120 * scale)))
    print(f"workload: {prog.name}, {len(prog)} static instructions")

    base = compile_baseline(prog)
    prop = compile_proposed(prog)
    print("\n--- what the proposed pipeline decided ---")
    print(prop.summary())

    print("\n--- timing simulation ---")
    rows = [
        ("2bitBP   (baseline code)", base.program, "twobit"),
        ("Proposed (transformed)  ", prop.program, "twobit"),
        ("PerfectBP (upper bound) ", base.program, "perfect"),
    ]
    results = []
    for label, program, predictor in rows:
        st = simulate(program, r10k_config(predictor))
        results.append((label, st))
        print(f"{label}  IPC={st.ipc:5.3f}  cycles={st.cycles:>8,}  "
              f"branch-accuracy={st.predictor.accuracy * 100:6.2f}%  "
              f"mispredicts={st.mispredict_events}")

    base_ipc = results[0][1].ipc
    prop_ipc = results[1][1].ipc
    print(f"\nproposed/baseline IPC ratio: {prop_ipc / base_ipc:.2f}x "
          f"(the paper reports 0.3-0.6-fold improvements)")


if __name__ == "__main__":
    main()
