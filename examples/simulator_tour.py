#!/usr/bin/env python3
"""A tour of the R10000-like machine model.

Demonstrates every simulator layer on a small hand-written program:

1. the assembly front end (parse / print);
2. the functional executor and its statistics;
3. per-branch outcome bit vectors;
4. the cycle-level out-of-order timing model, comparing the three
   prediction schemes and showing the queue/unit occupancy counters that
   feed the paper's Tables 3 and 4.

Usage:  python examples/simulator_tour.py
"""

from repro import r10k_config
from repro.isa import format_program, parse
from repro.profilefb import BranchHistory
from repro.sim import FunctionalSim, TimingSim

PROGRAM = """
# dot-product-with-a-twist: sum of a[i]*b[i], skipping negative products
.data
a:  .word 3, -1, 4, 1, -5, 9, 2, -6, 5, 3, 5, -8, 9, 7, 9, 3
b:  .word 2, 7, -1, 8, 2, -8, 1, 8, -2, 8, 4, 5, -9, 0, 4, 5
.text
main:
    la   r1, a
    la   r2, b
    li   r3, 0            # i
    li   r4, 16           # n
    li   r10, 0           # accumulator
loop:
    sll  r7, r3, 2
    add  r8, r1, r7
    lw   r5, 0(r8)
    add  r8, r2, r7
    lw   r6, 0(r8)
    mul  r9, r5, r6
    bltz r9, skip         # data-dependent: skip negative products
    add  r10, r10, r9
skip:
    addi r3, r3, 1
    bne  r3, r4, loop
    sw   r10, 0(r29)
    halt
"""


def main() -> None:
    prog = parse(PROGRAM, name="dot-skip")
    print("=" * 70)
    print("1. Parsed program (round-trips through the printer)")
    print("=" * 70)
    print(format_program(prog))

    print("=" * 70)
    print("2. Functional execution")
    print("=" * 70)
    fsim = FunctionalSim(prog)
    stats = fsim.run()
    print(f"result (r10)              = {fsim.regs['r10']}")
    print(f"dynamic instructions      = {stats.steps}")
    print(f"conditional branches      = {stats.branches} "
          f"({stats.taken_branches} taken)")
    print(f"loads / stores            = {stats.loads} / {stats.stores}")

    print()
    print("=" * 70)
    print("3. Branch outcome bit vectors (the paper's feedback metric)")
    print("=" * 70)
    for uid, outcomes in stats.branch_outcomes.items():
        h = BranchHistory(outcomes)
        ins = prog.instructions[stats.branch_pc[uid]]
        print(f"pc={stats.branch_pc[uid]:3d} {ins.op:<5} "
              f"{h.as_string():<20} freq={h.frequency:.2f} "
              f"toggle={h.toggle_factor:.2f}")

    print()
    print("=" * 70)
    print("4. Cycle-level timing under the three schemes")
    print("=" * 70)
    for predictor in ("twobit", "perfect", "static-taken"):
        tsim = TimingSim(r10k_config(predictor))
        st = tsim.run_program(prog)
        print(f"{predictor:<13} cycles={st.cycles:5d}  IPC={st.ipc:.3f}  "
              f"mispredicts={st.mispredict_events:3d}  "
              f"BR-queue-full={st.queue_full_pct('br'):5.1f}%  "
              f"ALU-sat={st.unit_full_pct('alu'):5.1f}%")

    print()
    print("Full per-run counters (twobit):")
    st = TimingSim(r10k_config("twobit")).run_program(prog)
    print(st.summary())


if __name__ == "__main__":
    main()
