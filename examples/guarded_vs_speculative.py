#!/usr/bin/env python3
"""Guarded vs speculative execution — the paper's central tension.

Section 3 of the paper: "There exists a subtle but important relationship
between speculative and guarded execution.  Excessive application of one
can critically affect the other."

This example makes that concrete on two diamonds:

* an UNPREDICTABLE branch with short balanced arms — guarding wins (it
  deletes the mispredictions; the annulled work is cheap);
* a PREDICTABLE branch with skewed arms (the paper's Figure 2 situation) —
  guarding loses (it pays for both arms every iteration and there were no
  mispredictions to recover).

Usage:  python examples/guarded_vs_speculative.py
"""

from repro import r10k_config, simulate
from repro.cfg import build_cfg
from repro.isa import parse
from repro.sched import reorder_block
from repro.transform import if_convert_diamond

UNPREDICTABLE = """
.text
main:
    li   r1, 0
    li   r2, 400
    li   r4, 12345
loop:
    muli r4, r4, 1103515245
    addi r4, r4, 12345
    srl  r5, r4, 16
    andi r5, r5, 1
    beqz r5, even          # a coin flip: the 2-bit predictor is helpless
    addi r10, r10, 3
    j    next
even:
    addi r11, r11, 5
next:
    addi r1, r1, 1
    bne  r1, r2, loop
    halt
"""

PREDICTABLE_SKEWED = """
.text
main:
    li   r1, 0
    li   r2, 400
loop:
    slti r5, r1, 390
    beqz r5, rare          # taken only in the last 10 iterations
    addi r10, r10, 1
    j    next
rare:
    mul  r11, r1, r1       # the long arm
    mul  r11, r11, r11
    mul  r12, r11, r1
    add  r11, r11, r12
next:
    addi r1, r1, 1
    bne  r1, r2, loop
    halt
"""


def guard_the_diamond(src: str):
    cfg = build_cfg(src)
    head = next(bb.bid for bb in cfg.blocks if bb.label == "loop")
    result = if_convert_diamond(cfg, head)
    assert result is not None, "diamond did not convert"
    for bb in cfg.blocks:
        if bb.instructions:
            reorder_block(bb)
    return cfg.to_program()


def compare(name: str, src: str) -> None:
    original = parse(src)
    guarded = guard_the_diamond(src)
    a = simulate(original, r10k_config("twobit"))
    b = simulate(guarded, r10k_config("twobit"))
    verdict = "guarding WINS" if b.cycles < a.cycles else "guarding LOSES"
    print(f"--- {name} ---")
    print(f"  branchy : cycles={a.cycles:6d}  mispredicts={a.mispredict_events:4d}  IPC={a.ipc:.3f}")
    print(f"  guarded : cycles={b.cycles:6d}  mispredicts={b.mispredict_events:4d}  "
          f"IPC={b.ipc:.3f}  annulled={b.annulled}")
    print(f"  => {verdict} ({a.cycles - b.cycles:+d} cycles saved)")
    print()


def main() -> None:
    print(__doc__)
    compare("unpredictable branch, short balanced arms", UNPREDICTABLE)
    compare("predictable branch, skewed arms (Figure 2)", PREDICTABLE_SKEWED)
    print("This is exactly why the paper's Figure 6 algorithm consults the")
    print("feedback metrics and a cost model before choosing — see")
    print("repro.core.algorithm.decide().")


if __name__ == "__main__":
    main()
