#!/usr/bin/env python3
"""The paper's multi-run feedback workflow, end to end.

Section 5: "Each loop is instrumented with additional feedback metrics ...
The previous branch outcomes are recorded using bit vectors" — i.e. profile
data is *gathered from previous runs* and consumed by a later compilation.

This example plays both roles:

1. TRAINING RUN  — profile the workload, serialize the feedback file;
2. STABILITY     — profile a second input and check the phase boundaries
                   agree (the precondition for sound branch splitting);
3. RECOMPILE     — load the feedback file in a "fresh compiler process"
                   and run the proposed pipeline from it;
4. EVALUATE      — three-scheme comparison of the result.

Usage:  python examples/feedback_workflow.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import compile_baseline, compile_proposed, r10k_config, simulate
from repro.profilefb import ProfileDB, boundaries_stable
from repro.workloads import grep_program


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="repro-feedback-"))
    workdir.mkdir(parents=True, exist_ok=True)

    print("=== 1. training run ===")
    prog = grep_program(n=4000)
    db = ProfileDB.from_run(prog)
    feedback = workdir / "grep.profile.json"
    feedback.write_text(db.to_json())
    print(f"profiled {db.exec_stats.steps} dynamic instructions, "
          f"{len(db.branches)} static branches")
    print(f"feedback file: {feedback} ({feedback.stat().st_size} bytes)")

    print("\n=== 2. cross-input stability ===")
    db2 = ProfileDB.from_run(grep_program(n=4000, seed=424242))
    # Compare the scan branch's phase boundaries across the two inputs.
    def scan_branch(d):
        return max((bp for bp in d.branches.values()
                    if bp.classification.pattern.kind == "phased"),
                   key=lambda bp: bp.executions, default=None)

    a, b = scan_branch(db), scan_branch(db2)
    if a and b:
        stable = boundaries_stable([a.history, b.history], tolerance=0.1)
        print(f"phased scan branch found in both runs; "
              f"boundaries stable: {stable}")

    print("\n=== 3. recompile from the feedback file ===")
    reloaded = ProfileDB.from_json(feedback.read_text(), prog)
    result = compile_proposed(prog, profile=reloaded)
    print(result.summary())

    print("\n=== 4. evaluate ===")
    base = compile_baseline(prog).program
    for label, program, predictor in (
            ("2bitBP   ", base, "twobit"),
            ("Proposed ", result.program, "twobit"),
            ("PerfectBP", base, "perfect")):
        st = simulate(program, r10k_config(predictor))
        print(f"{label} IPC={st.ipc:.3f}  "
              f"accuracy={st.predictor.accuracy * 100:6.2f}%")


if __name__ == "__main__":
    main()
