"""Shared fixtures for the benchmark harness.

The full three-scheme suite run is expensive, so it is executed once per
session (at a reduced but representative scale) and shared by every
table-printing benchmark.  The ``benchmark`` fixture then times a single
representative unit of work, keeping pytest-benchmark's statistics
meaningful without re-running the whole sweep per round.

The session run goes through the evaluation engine: results land in the
artifact cache (``.repro-cache/`` or ``$REPRO_CACHE_DIR``), so a repeated
harness invocation skips the compile/simulate work entirely, and
``REPRO_JOBS=N`` fans cold cells out over worker processes.
"""

import os

import pytest

from repro.engine import ArtifactCache
from repro.eval import run_suite

#: Scale factor for benchmark-suite runs (1.0 = the default workload sizes
#: used in EXPERIMENTS.md; reduced here to keep the harness quick).
SUITE_SCALE = 0.3


@pytest.fixture(scope="session")
def suite_runs():
    """The full Tables-3/4 sweep: 4 benchmarks x 3 schemes, cached."""
    return run_suite(scale=SUITE_SCALE, cache=ArtifactCache(),
                     jobs=int(os.environ.get("REPRO_JOBS", "1")))
