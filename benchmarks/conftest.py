"""Shared fixtures for the benchmark harness.

The full three-scheme suite run is expensive, so it is executed once per
session (at a reduced but representative scale) and shared by every
table-printing benchmark.  The ``benchmark`` fixture then times a single
representative unit of work, keeping pytest-benchmark's statistics
meaningful without re-running the whole sweep per round.
"""

import pytest

from repro.eval import run_suite

#: Scale factor for benchmark-suite runs (1.0 = the default workload sizes
#: used in EXPERIMENTS.md; reduced here to keep the harness quick).
SUITE_SCALE = 0.3


@pytest.fixture(scope="session")
def suite_runs():
    """The full Tables-3/4 sweep: 4 benchmarks x 3 schemes."""
    return run_suite(scale=SUITE_SCALE)
