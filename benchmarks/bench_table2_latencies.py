"""Table 2 reproduction: machine latencies.

A configuration echo: the timing model must assume exactly the paper's
latencies (alu 1, ld/st 2, sft 1, fp add/mul/div 3, cache miss penalty 6).
The benchmark times a short simulation whose cycle count is sensitive to
every one of them, pinning the table to observed behavior rather than just
configuration values.

Run:  pytest benchmarks/bench_table2_latencies.py --benchmark-only -s
"""

from repro import r10k_config, simulate
from repro.eval import format_table2, table2
from repro.isa import parse

#: Serial dependence chains, one per latency class.
_CHAIN = """
.text
    li r1, 0x1000
    sw r1, 0(r1)
    cvtif f1, r1
{body}
    halt
"""


def _chain(op_line: str, n: int = 8) -> int:
    src = _CHAIN.format(body="\n".join(op_line for _ in range(n)))
    return simulate(parse(src), r10k_config("perfect")).cycles


def _latency(op_line: str, n: int = 24) -> float:
    """Serial-chain latency: cycle delta between two chain lengths, which
    cancels cold-start (icache/dcache miss) overlap at the program head."""
    return (_chain(op_line, 2 * n) - _chain(op_line, n)) / n


def test_table2(benchmark):
    cycles_alu = benchmark(lambda: _chain("add r1, r1, r1"))
    print()
    print(format_table2())
    rows = {r["instruction"]: r["latency"] for r in table2()}
    assert rows["alu"] == 1
    assert rows["ld/st"] == 2
    assert rows["sft"] == 1
    assert rows["fp add"] == rows["fp mul"] == rows["fp div"] == 3
    assert rows["cache miss penalty"] == 6

    # Observed behavior check: chain cycle deltas equal the latencies.
    per = {
        "alu": _latency("add r1, r1, r1"),
        "sft": _latency("sll r1, r1, 0"),
        "ld/st": _latency("lw r1, 0(r1)"),
        "fp add": _latency("fadd f1, f1, f1"),
        "fp div": _latency("fdiv f1, f1, f1"),
    }
    print("observed serial-chain latencies:",
          {k: round(v, 2) for k, v in per.items()})
    assert per["alu"] == rows["alu"]
    assert per["sft"] == rows["sft"]
    assert per["ld/st"] == rows["ld/st"]
    assert per["fp add"] == rows["fp add"]
    assert per["fp div"] == rows["fp div"]
