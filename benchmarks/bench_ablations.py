"""Ablations: the individual/combined effects of the paper's title.

The paper's question is precisely how speculative and guarded execution
behave *individually* and *combined*.  This harness regenerates that
analysis on our suite:

* feature ablation — branch-likely only, guarding only, splitting only,
  speculation only, and the full combination, per benchmark;
* BHT size sweep — the aliasing relief that branch-likelies provide only
  materializes when history entries are contended;
* split-style comparison — the Figure 5 sectioned form vs the literal
  Figure 7(b) inline form on a phased loop.

Run:  pytest benchmarks/bench_ablations.py --benchmark-only -s
"""

import pytest

from repro import compile_baseline, compile_variant, r10k_config, simulate
from repro.cfg import LoopForest, build_cfg
from repro.profilefb import Segment
from repro.transform import split_branch
from repro.workloads import benchmark_programs, phased_loop_program

SCALE = 0.3

VARIANTS = {
    "baseline": dict(likely=False, split=False, ifconvert=False,
                     speculation=False),
    "likely-only": dict(likely=True, split=False, ifconvert=False,
                        speculation=False),
    "guard-only": dict(likely=False, split=False, ifconvert=True,
                       speculation=False),
    "split-only": dict(likely=False, split=True, ifconvert=False,
                       speculation=False),
    "spec-only": dict(likely=False, split=False, ifconvert=False,
                      speculation=True),
    "combined": dict(likely=True, split=True, ifconvert=True,
                     speculation=True),
}


def test_individual_vs_combined(benchmark):
    """The title experiment: each technique alone, then together."""
    programs = benchmark_programs(scale=SCALE)

    def measure():
        out = {}
        for name, prog in programs.items():
            from repro.profilefb import ProfileDB

            profile = ProfileDB.from_run(prog)  # shared across variants
            row = {}
            for vname, toggles in VARIANTS.items():
                cr = compile_variant(prog, profile=profile, **toggles)
                st = simulate(cr.program, r10k_config("twobit"))
                row[vname] = st.ipc
            out[name] = row
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    header = f"{'benchmark':<10}" + "".join(f"{v:>13}" for v in VARIANTS)
    print("\nIPC by technique (2-bit hardware prediction underneath):")
    print(header)
    for name, row in results.items():
        print(f"{name:<10}" + "".join(f"{row[v]:>13.3f}" for v in VARIANTS))

    for name, row in results.items():
        # No single technique may regress the baseline by more than 5 %
        # (every transform is profit-gated) ...
        for vname in VARIANTS:
            assert row[vname] >= row["baseline"] * 0.95, (name, vname)
        # ... and the combination must not lose to the best individual
        # technique by more than noise (the paper's combined claim).
        best_individual = max(row[v] for v in VARIANTS if v != "combined")
        assert row["combined"] >= best_individual * 0.97, name


def test_bht_size_sweep(benchmark):
    """Prediction-table contention: with few BHT entries, benchmark
    branches alias and the baseline degrades; branch-likely-converted code
    holds no entries and is insulated."""
    prog = benchmark_programs(scale=SCALE)["compress"]
    base = compile_baseline(prog).program
    prop = compile_variant(prog, likely=True, split=False, ifconvert=False,
                           speculation=False).program

    def sweep():
        out = {}
        for entries in (2, 8, 64, 512):
            cfg_b = r10k_config("twobit", bht_entries=entries)
            out[entries] = (simulate(base, cfg_b).ipc,
                            simulate(prop, cfg_b).ipc)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nBHT size sweep (compress): entries -> (baseline, likely) IPC")
    for entries, (b, p) in results.items():
        print(f"  {entries:>4}: {b:.3f}  {p:.3f}  (+{100 * (p / b - 1):.1f}%)")
    # Baseline IPC must be monotonically non-decreasing with table size.
    ipcs = [results[e][0] for e in (2, 8, 64, 512)]
    assert all(a <= b + 1e-9 for a, b in zip(ipcs, ipcs[1:]))
    # The likely variant's advantage is largest at the smallest table.
    adv = {e: results[e][1] / results[e][0] for e in results}
    assert adv[2] >= adv[512] - 0.02


def test_hardware_vs_software(benchmark):
    """The paper's future-work question, quantified: how much of the
    proposed software scheme's benefit would stronger hardware (a
    two-level local-history predictor) capture on its own — and do they
    compose?"""
    programs = benchmark_programs(scale=SCALE)

    def measure():
        out = {}
        for name, prog in programs.items():
            base = compile_baseline(prog).program
            prop = compile_variant(prog).program  # everything on
            out[name] = {
                "2bit": simulate(base, r10k_config("twobit")).ipc,
                "2bit+sw": simulate(prop, r10k_config("twobit")).ipc,
                "2level": simulate(base, r10k_config("twolevel")).ipc,
                "2level+sw": simulate(prop, r10k_config("twolevel")).ipc,
            }
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    cols = ("2bit", "2bit+sw", "2level", "2level+sw")
    print("\nhardware vs software (IPC):")
    print(f"{'benchmark':<10}" + "".join(f"{c:>11}" for c in cols))
    for name, row in results.items():
        print(f"{name:<10}" + "".join(f"{row[c]:>11.3f}" for c in cols))
    for name, row in results.items():
        # "Better" hardware is NOT uniformly better: on xlisp the 4-bit
        # local history cannot represent the interpreter's period-12
        # opcode pattern and trains noisily, landing below the 2-bit
        # counter.  Allow that, but bound the damage ...
        assert row["2level"] >= row["2bit"] * 0.90, name
        # ... and require the software scheme to remain additive (or
        # neutral) on top of the stronger hardware.
        assert row["2level+sw"] >= row["2level"] * 0.95, name
        assert row["2level+sw"] >= row["2bit"] * 0.98, name


def test_queue_size_sweep(benchmark):
    """DESIGN.md ablation: how sensitive are the Table 3/4 shapes to the
    16-entry reservation queues?"""
    prog = benchmark_programs(scale=SCALE)["espresso"]
    base = compile_baseline(prog).program

    def sweep():
        out = {}
        for size in (2, 4, 16, 64):
            cfg = r10k_config("perfect", int_queue_size=size,
                              addr_queue_size=size, fp_queue_size=size)
            st = simulate(base, cfg)
            out[size] = (st.ipc, st.queue_full_pct("alu"))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nqueue size sweep (espresso, perfect BP): size -> IPC, ALU-queue-full%")
    for size, (ipc, full) in results.items():
        print(f"  {size:>3}: IPC={ipc:.3f}  full={full:5.1f}%")
    ipcs = [results[s][0] for s in (2, 4, 16, 64)]
    assert all(a <= b + 1e-9 for a, b in zip(ipcs, ipcs[1:]))
    # Tiny queues must be visibly saturated.
    assert results[2][1] >= results[64][1]


SEGS = (Segment(0, 40, "taken", 1.0),
        Segment(40, 60, "mixed", 0.5),
        Segment(60, 100, "nottaken", 0.0))


@pytest.mark.parametrize("style", ["sectioned", "inline"])
def test_split_style(benchmark, style):
    """Figure 5 sectioned codegen vs the literal Figure 7(b) inline form."""
    def build_and_run():
        prog = phased_loop_program([(40, "taken"), (20, "alternate"),
                                    (40, "nottaken")], body_ops=2)
        cfg = build_cfg(prog)
        forest = LoopForest(cfg)
        block = next(
            bb.bid for bb in cfg.blocks
            if bb.terminator is not None
            and bb.terminator.target == "arm_taken")
        split_branch(cfg, forest, block, SEGS, style=style)
        split_prog = cfg.to_program()
        st0 = simulate(prog, r10k_config("twobit"))
        st1 = simulate(split_prog, r10k_config("twobit"))
        return st0, st1

    st0, st1 = benchmark(build_and_run)
    print(f"\n[{style}] accuracy {st0.predictor.accuracy * 100:.1f}% -> "
          f"{st1.predictor.accuracy * 100:.1f}%, "
          f"cycles {st0.cycles} -> {st1.cycles}")
    if style == "sectioned":
        assert st1.predictor.accuracy >= st0.predictor.accuracy - 0.01


def test_wrong_path_modeling(benchmark):
    """Fidelity ablation: does modeling wrong-path fetch occupancy change
    the Table 3/4 shapes?  (The paper's occupancy numbers suggest its
    simulator drained the front end on mispredictions, which is this
    repository's default; the optional mode quantifies the difference.)"""
    from repro.sim import TimingSim

    prog = compile_baseline(benchmark_programs(scale=SCALE)["espresso"]).program

    def both():
        out = {}
        for wp in (False, True):
            sim = TimingSim(r10k_config("twobit"), program=prog,
                            model_wrong_path=wp)
            st = sim.run_program(prog)
            out[wp] = st
        return out

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    off, on = results[False], results[True]
    print("\nwrong-path modeling (espresso, 2bitBP):")
    print(f"  off: IPC={off.ipc:.3f}  BR-full={off.queue_full_pct('br'):5.1f}%  squashed={off.wrong_path_squashed}")
    print(f"  on : IPC={on.ipc:.3f}  BR-full={on.queue_full_pct('br'):5.1f}%  squashed={on.wrong_path_squashed}")
    assert off.committed == on.committed
    assert on.wrong_path_squashed > 0
    assert on.cycles >= off.cycles
