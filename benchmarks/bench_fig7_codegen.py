"""Figures 5/7 reproduction: split-branch code generation.

Applies both codegen styles to a loop shaped like Figure 7(a) — a forward
branch with phased behavior inside a counted loop — and reports the
instrumentation each one emits (counter, split predicates, branch-likelies)
together with measured prediction behavior:

* the sectioned (Figure 5) form, which the pipeline uses, improves or
  preserves accuracy;
* the literal inline (Figure 7(b)) form degrades it under always-taken
  likely semantics — the reproduction finding documented in EXPERIMENTS.md.

Run:  pytest benchmarks/bench_fig7_codegen.py --benchmark-only -s
"""

import pytest

from repro import r10k_config
from repro.cfg import LoopForest, build_cfg
from repro.profilefb import Segment
from repro.sim import TimingSim
from repro.transform import split_branch
from repro.workloads import phased_loop_program

SEGS = (Segment(0, 40, "taken", 1.0),
        Segment(40, 60, "mixed", 0.5),
        Segment(60, 100, "nottaken", 0.0))


def _split(style: str):
    prog = phased_loop_program([(40, "taken"), (20, "alternate"),
                                (40, "nottaken")], body_ops=2)
    cfg = build_cfg(prog)
    forest = LoopForest(cfg)
    block = next(
        bb.bid for bb in cfg.blocks
        if bb.terminator is not None
        and bb.terminator.target == "arm_taken")
    report = split_branch(cfg, forest, block, SEGS, style=style)
    return prog, cfg.to_program(), report


@pytest.mark.parametrize("style", ["sectioned", "inline"])
def test_fig7_codegen(benchmark, style):
    orig, split_prog, report = benchmark(_split, style)
    counters = [i for i in split_prog if i.ann.get("split_counter")]
    likelies = [i for i in split_prog if i.is_likely]
    st_orig = TimingSim(r10k_config("twobit")).run_program(orig)
    st_split = TimingSim(r10k_config("twobit")).run_program(split_prog)
    print(f"\n[{style}] boundaries={report.boundaries} "
          f"counter={report.counter} cond_cc={report.cond_cc}")
    print(f"  instrumentation ops: {len(counters)}  "
          f"likely branches: {len(likelies)}  "
          f"code size {len(orig)} -> {len(split_prog)}")
    print(f"  accuracy {st_orig.predictor.accuracy * 100:.2f}% -> "
          f"{st_split.predictor.accuracy * 100:.2f}%")
    assert counters, "iteration counter must be inserted (Figure 7(b): i=0, i=i+1)"
    assert likelies, "split must emit branch-likely instructions"
    if style == "sectioned":
        assert st_split.predictor.accuracy >= st_orig.predictor.accuracy - 0.01
    else:
        # The literal Figure 7(b) form is faithfully counterproductive.
        assert st_split.predictor.accuracy <= st_orig.predictor.accuracy
