"""Table 1 reproduction: benchmark characteristics.

Paper columns: dynamic instructions, % branch instructions in the dynamic
stream, % correctly predicted branches (2-bit scheme).  Paper values for
reference — our kernels are scaled-down algorithmic stand-ins, so dynamic
counts differ by construction; branch density and predictability land in
the paper's bands:

    benchmark   dyn.instr(M)  branch%  predicted%
    Compress        0.41       20.81     91.98
    Espresso      786.58       19.26     94.57
    Xlisp        5256.53       23.12     89.21
    Grep            0.31       22.28     92.0

Run:  pytest benchmarks/bench_table1_characteristics.py --benchmark-only -s
"""

from repro.eval import format_table1, table1
from repro.sim import FunctionalSim
from repro.workloads import benchmark_programs


def test_table1(benchmark, suite_runs):
    # Time one representative functional profiling run.
    prog = benchmark_programs(scale=0.3)["compress"]
    benchmark(lambda: FunctionalSim(prog).run())

    print()
    print(format_table1(suite_runs))
    rows = {r["benchmark"]: r for r in table1(suite_runs)}
    assert set(rows) == {"compress", "espresso", "xlisp", "grep"}
    for name, row in rows.items():
        # Branch density in a plausible band around the paper's ~20%.
        assert 8.0 <= row["branch_pct"] <= 40.0, name
        # Predictability in the paper's high-80s..mid-90s band.
        assert 75.0 <= row["predicted_pct"] <= 99.0, name
