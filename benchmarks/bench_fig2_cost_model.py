"""Figure 2 reproduction: the worked cost-model example.

Regenerates the paper's exact arithmetic for the diamond with schedule
lengths 10/13/5/12, 50/50 arm probabilities, 4 vacant slots and 100 loop
iterations:

* acyclic baseline schedule ........ 3100 cycles  (Figure 2(b))
* balanced speculation ............. 2900 cycles  (Figure 2(c))
* guarded execution ................ 3600 cycles  (Figure 2(d), worse!)

Run:  pytest benchmarks/bench_fig2_cost_model.py --benchmark-only -s
"""

from repro.core.cost_model import PAPER_FIG2


def _fig2_all():
    return (PAPER_FIG2.baseline_cost(),
            PAPER_FIG2.speculate_balanced(2),
            PAPER_FIG2.guarded_cost())


def test_fig2_cost_model(benchmark):
    baseline, speculated, guarded = benchmark(_fig2_all)
    print("\nFigure 2 worked example (paper values in parentheses):")
    print(f"  baseline     {baseline:6.0f}  (3100)")
    print(f"  speculation  {speculated:6.0f}  (2900)")
    print(f"  guarded      {guarded:6.0f}  (3600)")
    assert baseline == 3100.0
    assert speculated == 2900.0
    assert guarded == 3600.0
    assert guarded > baseline > speculated
