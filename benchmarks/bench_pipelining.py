"""Section 3 claim: prior if-conversion enables software pipelining.

"It has been proved that software pipelining is one such transformation
which benefits from it [10, 15].  Prior application reduces messy control
flow, makes the job of the cyclic scheduler much easier ..."

This bench quantifies that on a reduction loop with a data-dependent
diamond in its body:

* the branchy loop cannot be modulo-scheduled at all (multi-block body);
* after hyperblock formation it schedules at an initiation interval (II)
  well below the acyclic schedule length of one iteration — iterations
  overlap in the software pipeline.

Run:  pytest benchmarks/bench_pipelining.py --benchmark-only -s
"""

import pytest

from repro.cfg import LoopForest, build_cfg
from repro.sched import (
    NotPipelinable, loop_pipeline_report, schedule_length,
)
from repro.transform import form_hyperblocks

LOOP = """
.text
main:
    li   r1, 0
    li   r2, 64
    li   r9, 0x1000
loop:
    lw   r3, 0(r9)
    lw   r5, 4(r9)
    bltz r3, negate
    add  r4, r4, r3
    mul  r6, r5, r3
    j    next
negate:
    sub  r4, r4, r3
    mul  r6, r5, r5
next:
    add  r7, r7, r6
    addi r9, r9, 8
    addi r1, r1, 1
    bne  r1, r2, loop
    halt
"""


def _pipeline():
    cfg = build_cfg(LOOP)
    forest = LoopForest(cfg)
    loop = forest.loops[0]
    branchy_fails = False
    try:
        loop_pipeline_report(cfg, loop)
    except NotPipelinable:
        branchy_fails = True
    rep = form_hyperblocks(cfg)
    loop2 = LoopForest(cfg).loops[0]
    sched = loop_pipeline_report(cfg, loop2)
    body = cfg.block(loop2.header).instructions[:-1]
    return branchy_fails, rep, sched, schedule_length(body)


def test_ifconversion_enables_pipelining(benchmark):
    branchy_fails, rep, sched, acyclic_len = benchmark(_pipeline)
    print(f"\nbranchy loop pipelinable       : {not branchy_fails}")
    print(f"hyperblock conversions         : {rep.conversions} "
          f"(+{rep.merged} merges)")
    print(f"ResMII / RecMII / achieved II  : {sched.res_mii} / "
          f"{sched.rec_mii} / {sched.ii}")
    print(f"acyclic schedule length        : {acyclic_len}")
    print(f"pipeline stages                : {sched.stages}")
    assert branchy_fails, "multi-block loop must be rejected"
    assert rep.conversions >= 1
    assert sched.ii >= max(sched.res_mii, sched.rec_mii)
    # The paper's payoff: iterations overlap.
    assert sched.ii < acyclic_len
    assert sched.stages >= 2
