"""Table 4 reproduction: functional-unit usage and IPC.

Paper shape to reproduce (IPC row):

    scheme        Compress  Espresso  Xlisp  Grep
    2-bit BP          0.63      0.68   0.61  0.64
    Proposed          1.16      1.36   0.98  1.25
    Perfect BP        1.51      1.53   1.33  1.49

i.e. per benchmark ``IPC(2bitBP) < IPC(Proposed) <= IPC(PerfectBP)``, with
the proposed scheme recovering a large share of the perfect-prediction
headroom, and functional-unit saturation rising alongside.  Absolute IPCs
differ (our kernels, their testbed); the ordering and the direction of the
unit-usage shift are the reproduction targets.

Run:  pytest benchmarks/bench_table4_ipc.py --benchmark-only -s
"""

from repro import r10k_config
from repro.core import compile_proposed
from repro.eval import (
    SCHEMES, format_improvements, format_shape_verdicts, format_table4,
    shape_verdicts, table4,
)
from repro.sim import FunctionalSim, TimingSim
from repro.workloads import benchmark_programs


def test_table4(benchmark, suite_runs):
    # Time the expensive unit: the full proposed-pipeline compilation.
    prog = benchmark_programs(scale=0.3)["espresso"]
    benchmark(compile_proposed, prog)

    print()
    print(format_table4(suite_runs))
    print()
    print(format_improvements(suite_runs))
    print()
    print(format_shape_verdicts(suite_runs))
    for v in shape_verdicts(suite_runs):
        assert v["ipc_ordering_matches"], v["benchmark"]

    rows = table4(suite_runs)
    for row in rows:
        name = row["benchmark"]
        ipc = {s: row[s]["IPC"] for s in SCHEMES}
        # Ordering (Proposed may tie on a benchmark where nothing fires).
        assert ipc["Proposed"] >= ipc["2bitBP"] * 0.99, name
        assert ipc["PerfectBP"] >= ipc["Proposed"] * 0.95, name
    # Aggregate improvement exists (the paper's 0.3-0.6-fold headline).
    ratios = [row["Proposed"]["IPC"] / row["2bitBP"]["IPC"] for row in rows]
    assert max(ratios) >= 1.3
    assert sum(ratios) / len(ratios) > 1.05
    # Unit usage rises with better schemes (summed ALU saturation).
    alu = {s: sum(r[s]["ALU"] for r in rows) for s in SCHEMES}
    assert alu["2bitBP"] <= alu["Proposed"] + 1e-9
