"""Figures 3/4 reproduction: the segment-split schedule.

The paper splits the Figure 2 loop's iteration space 40 % / 20 % / 40 %
(taken-biased / toggling / not-taken-biased), specializes each segment's
schedule, and obtains 100 * (9.44 + 5.8 + 12.32) = 2756 cycles — beating
the best one-time-metric schedule (2900).

Run:  pytest benchmarks/bench_fig4_split.py --benchmark-only -s
"""

from repro.core.cost_model import (
    PAPER_FIG2, PAPER_FIG4_PLAN, paper_fig4_cost, split_cost,
)


def test_fig4_split_cost(benchmark):
    total = benchmark(paper_fig4_cost)
    seg_costs = [
        split_cost(PAPER_FIG2, (plan._replace(fraction=1.0),))
        if hasattr(plan, "_replace") else None
        for plan in PAPER_FIG4_PLAN
    ]
    print("\nFigure 4 segment-split schedule (paper values in parentheses):")
    print(f"  total        {total:7.1f}  (2756)")
    print(f"  one-time best {PAPER_FIG2.best_one_time_cost(2):6.1f}  (2900)")
    assert abs(total - 2756.0) < 1e-9
    assert total < PAPER_FIG2.best_one_time_cost(2)


def test_fig4_per_segment_terms(benchmark):
    """The three per-segment terms: 9.44, 5.8, 12.32 cycles/iteration."""
    from dataclasses import replace

    def terms():
        out = []
        for plan in PAPER_FIG4_PLAN:
            region = replace(PAPER_FIG2, p_b2=plan.p_b2)
            if plan.strategy == "balanced":
                per = region.per_iter_balanced(plan.k)
            elif plan.strategy == "favor_b2":
                per = region.per_iter_biased(True, plan.k)
            else:
                per = region.per_iter_biased(False, plan.k)
            out.append(plan.fraction * per)
        return out

    t = benchmark(terms)
    print(f"\nper-segment weighted terms: {[f'{x:.2f}' for x in t]} "
          f"(paper: 9.44, 5.80, 12.32)")
    assert [round(x, 2) for x in t] == [9.44, 5.80, 12.32]
