"""Figure 1 reproduction: speculation with software renaming and forward
substitution.

The paper's Figure 1 walks one MIPS fragment through the machinery:

  (a) ``sub r6, r3, 1`` sits below ``beq``; r6 is live on the fall-through
      path;
  (b) the sub is speculated above the branch with its destination renamed
      (r6 -> r9), a copy ``mov r6, r9`` restores the name, and forward
      substitution rewires the following ``add`` to read r9 directly;
  (c) all instructions speculated;
  (d) guarded execution applied.

This bench applies the same sequence with this repository's passes and
asserts each structural property, then times the whole pipeline.

Run:  pytest benchmarks/bench_fig1_renaming.py --benchmark-only -s
"""

from repro.cfg import build_cfg
from repro.isa import parse
from repro.sim import final_state
from repro.transform import (
    eliminate_dead_code, if_convert_diamond, speculate_from_successor,
)

FIG1A = """
.text
main:
    li   r1, 5
    li   r2, 5
    li   r3, 10
    li   r4, 3
    li   r6, 77
    beq  r1, r2, L1
fall:
    add  r8, r6, r4
    j    end
L1:
    subi r6, r3, 1        # Figure 1(a): the instruction to speculate
    add  r8, r6, r4
end:
    sw   r8, 0(r29)
    sw   r6, 4(r29)
    halt
"""


def _fig1b():
    """Figure 1(b): speculate the sub with renaming + forward subst."""
    cfg = build_cfg(FIG1A)
    lab = {bb.label: bb for bb in cfg.blocks if bb.label}
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 1)
    return cfg, lab, rep


def _fig1c():
    """Figure 1(c): speculatively execute ALL instructions of the arm."""
    cfg = build_cfg(FIG1A)
    lab = {bb.label: bb for bb in cfg.blocks if bb.label}
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 4)
    return cfg, lab, rep


def _fig1d():
    """Figure 1(d): apply guarded execution instead."""
    cfg = build_cfg(FIG1A)
    lab = {bb.label: bb for bb in cfg.blocks if bb.label}
    res = if_convert_diamond(cfg, lab["main"].bid)
    eliminate_dead_code(cfg)
    return cfg, res


def test_fig1_renaming(benchmark):
    cfg, lab, rep = benchmark(_fig1b)
    print("\nFigure 1(b): rename map =", rep.renamed)
    # The destination was renamed and a copy restores it (paper: "r6 is
    # renamed to r9 ... A copy instruction mov r6,r9 is inserted").
    assert rep.count == 1
    assert "r6" in rep.renamed
    fresh = rep.renamed["r6"]
    copies = [i for i in lab["L1"].instructions if i.op == "mov"]
    assert copies and copies[0].srcs == (fresh,)
    # Forward substitution rewired the add ("all the subsequent uses of
    # register r6 ... are now replaced with register r9").
    add = [i for i in lab["L1"].instructions if i.op == "add"][0]
    assert fresh in add.srcs
    # Semantics on both branch outcomes.
    for r1 in (5, 6):
        src = FIG1A.replace("li   r1, 5", f"li   r1, {r1}")
        cfg2 = build_cfg(src)
        lab2 = {bb.label: bb for bb in cfg2.blocks if bb.label}
        speculate_from_successor(cfg2, lab2["main"].bid, lab2["L1"].bid, 1)
        a = final_state(parse(src))
        b = final_state(cfg2.to_program())
        assert (a.regs["r8"], a.regs["r6"]) == (b.regs["r8"], b.regs["r6"])


def test_fig1_full_speculation(benchmark):
    cfg, lab, rep = benchmark(_fig1c)
    print(f"\nFigure 1(c): {rep.count} instructions speculated")
    assert rep.count == 2  # subi + the dependent add
    a = final_state(parse(FIG1A))
    b = final_state(cfg.to_program())
    assert (a.regs["r8"], a.regs["r6"]) == (b.regs["r8"], b.regs["r6"])


def test_fig1_guarded(benchmark):
    cfg, res = benchmark(_fig1d)
    assert res is not None
    prog = cfg.to_program()
    print(f"\nFigure 1(d): {res.guarded_ops} ops guarded under {res.cc}")
    assert not any(i.is_branch for i in prog)
    a = final_state(parse(FIG1A))
    b = final_state(prog)
    assert (a.regs["r8"], a.regs["r6"]) == (b.regs["r8"], b.regs["r6"])
