"""Table 3 reproduction: reservation-station usage summary.

Paper shape to reproduce: the % of cycles the BRANCH reservation buffer is
full grows dramatically with prediction quality —

    scheme        Compress  Espresso  Xlisp  Grep     (paper, BR column)
    2-bit BP         13.91      9.05  13.67  13.75
    Proposed         44.47     57.9   48.2   53.28
    Perfect BP       64.8      64.8   67.6   69.21

i.e. ``2bitBP << Proposed < PerfectBP``: with mispredictions (or indirect
jumps) stalling fetch, the buffers drain; with better prediction more
branches pile up in flight.  "However, the % times the buffers are full is
not a good indication to suggest performance."

Run:  pytest benchmarks/bench_table3_reservation.py --benchmark-only -s
"""

from repro import r10k_config
from repro.core import compile_baseline
from repro.eval import SCHEMES, format_table3, table3
from repro.sim import FunctionalSim, TimingSim
from repro.workloads import benchmark_programs


def test_table3(benchmark, suite_runs):
    # Time one representative scheme simulation (compress / 2bitBP).
    prog = compile_baseline(benchmark_programs(scale=0.3)["compress"]).program

    def one_run():
        fsim = FunctionalSim(prog, record_outcomes=False)
        return TimingSim(r10k_config("twobit")).run(fsim.trace())

    benchmark(one_run)

    print()
    print(format_table3(suite_runs))
    rows = table3(suite_runs)
    # Shape: summed BR occupancy strictly ordered across schemes.
    br = {s: sum(r[s]["BR"] for r in rows) for s in SCHEMES}
    assert br["2bitBP"] <= br["Proposed"] + 1e-9
    assert br["Proposed"] <= br["PerfectBP"] + 1e-9
    # The BR buffer is the contended one; LDST/ALU stay far below it,
    # matching the paper's near-zero LDST/ALU columns.
    for row in rows:
        for s in SCHEMES:
            assert row[s]["LDST"] <= max(25.0, row[s]["BR"] + 25.0)
