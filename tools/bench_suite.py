#!/usr/bin/env python
"""Benchmark the evaluation engine: cold vs warm vs parallel suite runs.

Times three phases over a throwaway cache directory:

* **cold**     — empty cache, serial: every cell compiles and simulates;
* **warm**     — same cache, serial: every cell must hit the artifact
  store (the engine's whole point — wall-clock should collapse);
* **parallel** — empty cache again, ``--jobs N``: cold work fanned out
  over worker processes.

Writes ``BENCH_engine.json`` with wall-clock seconds per phase, the
compile/simulate counter totals, cache hit rates, the pool's execution
decision per phase (``serial``/``serial-oversubscribed``/``parallel``,
see :func:`repro.engine.pool.execution_mode`), and the warm/parallel
speedups over cold.  Counters are per-process, so a genuinely parallel
phase reports 0 compiles/simulates in this (parent) process — the work
shows up in its cache misses instead.

A fourth phase measures **observability overhead**: the same pipeline
trace replayed through :class:`~repro.sim.pipeline.TimingSim` with
observability disabled (twice — the A/A delta bounds timer noise) and
enabled; the disabled overhead must stay under 5 %.  Written separately
to ``BENCH_obs.json``.

A fifth phase measures the **speculative-safety pass**: wall-clock of the
Spectre-gadget analysis over the stock workloads (min-of-9 with the same
A/A noise gate) plus the ``safe-speculative`` scheme's IPC delta, code
growth, and fence counts vs plain ``Proposed``.  Written to
``BENCH_spectre.json``.

A sixth phase measures the **evaluation service** (``repro.serve``):
cold fan-out through an in-process server, warm replay from the tenant's
cache namespace (must do zero compiles/simulations), and two tenants
submitting an identical grid concurrently (each unique cell must execute
exactly once fleet-wide).  Written to ``BENCH_serve.json``.

A seventh phase measures the **fast execution backend**
(``repro.fastsim``): generated-step functional execution and the
decode-once + batched-event cell path vs the reference interpreters
(min-of-9 with the same A/A noise gate; payloads must stay
byte-identical), plus a cold end-to-end suite run per backend.  Written
to ``BENCH_fastsim.json``; the headline gate is a >= 10x functional
speedup.

A ninth phase measures the **ingest front end and the melded scheme**
(``repro.ingest``): wall-clock of parsing + lowering + verifying the
committed fixture corpus (min-of-9 with the A/A noise gate), then, for
every imported source workload, the ``melded`` scheme's IPC vs the
guarded ``Proposed`` baseline with the meld count — at least one
imported workload must actually meld.  Written to ``BENCH_ingest.json``.

An eighth phase measures the **closed-loop autotuner** (``repro.tune``):
one deterministic micro-search over the paper's Figure 6 thresholds,
gating that (a) the learned per-workload vector strictly beats the
paper-default heuristics' IPC on at least one stock workload within 5 %
code growth, and (b) resuming the identical search executes zero cells
(result-level cache hit; min-of-9 warm latency with the A/A noise
gate).  Written to ``BENCH_tune.json``.

Run from the repository root::

    python tools/bench_suite.py [--scale 0.1] [--jobs 4] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import COUNTERS, ArtifactCache, run_suite  # noqa: E402
from repro.engine import pool as _pool  # noqa: E402


def _timed_run(scale: float, max_steps: int, cache: ArtifactCache,
               jobs: int = 1) -> dict:
    """One suite run; returns wall-clock plus counter/cache deltas."""
    COUNTERS.reset()
    cache.counters.reset()
    _pool.LAST_DECISION = None
    t0 = time.perf_counter()
    runs = run_suite(scale=scale, max_steps=max_steps, cache=cache,
                     jobs=jobs)
    elapsed = time.perf_counter() - t0
    failed = [f"{name}/{cell.scheme}"
              for name, run in runs.items()
              for cell in run.results.values() if not cell.ok]
    return {
        "seconds": round(elapsed, 4),
        "compiles": COUNTERS.compiles,
        "simulates": COUNTERS.simulates,
        "cache_hits": cache.counters.hits,
        "cache_misses": cache.counters.misses,
        "hit_rate": round(cache.counters.hit_rate, 4),
        "failed_cells": failed,
        # None when jobs=1 short-circuited before the pool was consulted.
        "pool_decision": (_pool.LAST_DECISION.to_dict()
                          if _pool.LAST_DECISION else None),
    }


def bench_obs_overhead(scale: float, max_steps: int, repeats: int = 9,
                       out: str = "BENCH_obs.json") -> dict:
    """Measure the observability layer's overhead on ``sim.pipeline``.

    Materializes one benchmark's dynamic trace, then replays it through
    :class:`TimingSim` ``repeats`` times per mode, taking the minimum
    (the standard noise-robust estimator for timing microbenchmarks —
    scheduler preemptions only ever add time):

    * ``disabled``       — ``observer=None`` (the default production path);
    * ``disabled_again`` — the same thing re-measured, so the A/A delta
      reports how much of any "overhead" is just timer noise;
    * ``enabled``        — metrics registry on + a PipelineObserver.

    The acceptance gate is on the *disabled* path: with the registry off
    and no observer the simulator must run the pre-observability code,
    so its overhead bound is the A/A noise figure.
    """
    from repro.obs import PipelineObserver, metrics_disable, metrics_enable
    from repro.sim import FunctionalSim, TimingSim, r10k_config
    from repro.workloads import benchmark_programs

    prog = benchmark_programs(scale)["compress"]
    entries = list(FunctionalSim(prog, max_steps=max_steps,
                                 record_outcomes=False).trace())
    config = r10k_config("twobit")

    def _best(observed: bool) -> float:
        times = []
        for _ in range(repeats):
            observer = PipelineObserver() if observed else None
            t0 = time.perf_counter()
            TimingSim(config, observer=observer).run(iter(entries))
            times.append(time.perf_counter() - t0)
        return min(times)

    metrics_disable()
    disabled = _best(False)
    disabled_again = _best(False)
    metrics_enable()
    enabled = _best(True)
    metrics_disable()

    def _pct(new: float, base: float) -> float:
        return round(100.0 * (new - base) / base, 2) if base else 0.0

    record = {
        "bench": "obs_overhead",
        "scale": scale,
        "trace_entries": len(entries),
        "repeats": repeats,
        "seconds": {"disabled": round(disabled, 4),
                    "disabled_again": round(disabled_again, 4),
                    "enabled": round(enabled, 4)},
        # A/A delta: what the same code measures against itself (noise).
        "noise_pct": _pct(disabled_again, disabled),
        "overhead_disabled_pct": _pct(disabled_again, disabled),
        "overhead_enabled_pct": _pct(enabled, disabled),
        "gate_disabled_lt_5pct": abs(_pct(disabled_again, disabled)) < 5.0,
    }
    Path(out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"obs overhead: disabled={record['seconds']['disabled']}s "
          f"A/A noise={record['noise_pct']}% "
          f"enabled=+{record['overhead_enabled_pct']}% -> {out}",
          file=sys.stderr)
    return record


# Synthetic gadget workload for bench_spectre: the branch condition mixes
# the loop counter with untrusted r4 (tainted) and takes the double-load
# arm 3/4 of the time — hot and mispredicted enough that the region
# scheduler hoists the tainted load, which the safe scheme must fence.
_GADGET_LOOP = """.text
main:
    li   r17, 0
    li   r18, 64
loop:
    andi r2, r4, 0xFC
    li   r16, 0x50000
    add  r16, r16, r2
    andi r22, r17, 3
    add  r22, r22, r4
    bgtz r22, then_l
    j    join
then_l:
    lw   r3, 0(r16)
    andi r9, r3, 0xFC
    li   r23, 0x50000
    add  r23, r23, r9
    lw   r10, 0(r23)
    add  r1, r1, r10
join:
    addi r17, r17, 1
    sub  r24, r17, r18
    bltz r24, loop
    li   r20, 0x50100
    sw   r1, 0(r20)
    halt
"""


def bench_spectre(scale: float, max_steps: int, repeats: int = 9,
                  out: str = "BENCH_spectre.json") -> dict:
    """Measure the speculative-safety pass: analysis cost and safety cost.

    Two questions, answered over the stock workloads at *scale*:

    * **analysis overhead** — wall-clock of ``analyze_program`` per
      workload, min-of-``repeats`` with an A/A re-measure so the delta
      bounds timer noise (same estimator as :func:`bench_obs_overhead`);
      stock workloads must report **zero findings**;
    * **safety cost** — the ``safe-speculative`` scheme vs plain
      ``Proposed``: IPC delta, static code growth, and fences planted,
      from one deterministic compile+simulate per scheme (simulation is
      cycle-exact, so no repeat sampling is needed there).
    """
    from dataclasses import replace

    from repro.core import compile_proposed
    from repro.core.heuristics import DEFAULT_HEURISTICS
    from repro.robust.spectre import analyze_program
    from repro.sim import r10k_config, simulate
    from repro.workloads import benchmark_programs

    programs = benchmark_programs(scale)
    config = r10k_config("twobit")
    safe_heur = replace(DEFAULT_HEURISTICS, spectre_safe=True)

    def _best_analysis() -> float:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            for prog in programs.values():
                analyze_program(prog)
            times.append(time.perf_counter() - t0)
        return min(times)

    analysis = _best_analysis()
    analysis_again = _best_analysis()

    workloads: dict[str, dict] = {}
    for name, prog in programs.items():
        findings = analyze_program(prog)
        prop = compile_proposed(prog, max_steps=max_steps)
        safe = compile_proposed(prog, heur=safe_heur, max_steps=max_steps)
        prop_ipc = simulate(prop.program, config).ipc
        safe_ipc = simulate(safe.program, config).ipc
        rr = safe.region_report
        workloads[name] = {
            "findings": len(findings),
            "ipc_proposed": round(prop_ipc, 4),
            "ipc_safe": round(safe_ipc, 4),
            "ipc_delta_pct": round(
                100.0 * (safe_ipc - prop_ipc) / prop_ipc, 2)
            if prop_ipc else 0.0,
            "code_growth_pct": round(
                100.0 * (len(safe.program) - len(prop.program))
                / len(prop.program), 2) if len(prop.program) else 0.0,
            "fences": rr.fenced if rr else 0,
            "suppressed": rr.suppressed if rr else 0,
        }

    # One synthetic gadget-bearing workload so the record also shows the
    # non-trivial cost: a hot, tainted double-load arm the plain scheme
    # speculates on and the safe scheme must fence.
    from repro.core import compile_variant
    from repro.isa import parse

    gadget = parse(_GADGET_LOOP, name="gadget-loop")
    g_findings = analyze_program(gadget)
    g_prop = compile_variant(gadget, ifconvert=False)
    g_safe = compile_variant(gadget, ifconvert=False, spectre=True)
    g_prop_ipc = simulate(g_prop.program, config).ipc
    g_safe_ipc = simulate(g_safe.program, config).ipc
    g_rr = g_safe.region_report
    synthetic = {
        "findings": len(g_findings),
        "ipc_proposed": round(g_prop_ipc, 4),
        "ipc_safe": round(g_safe_ipc, 4),
        "ipc_delta_pct": round(
            100.0 * (g_safe_ipc - g_prop_ipc) / g_prop_ipc, 2)
        if g_prop_ipc else 0.0,
        "code_growth_pct": round(
            100.0 * (len(g_safe.program) - len(g_prop.program))
            / len(g_prop.program), 2) if len(g_prop.program) else 0.0,
        "fences": g_rr.fenced if g_rr else 0,
        "suppressed": g_rr.suppressed if g_rr else 0,
    }

    def _pct(new: float, base: float) -> float:
        return round(100.0 * (new - base) / base, 2) if base else 0.0

    record = {
        "bench": "spectre",
        "synthetic_gadget": synthetic,
        "scale": scale,
        "repeats": repeats,
        "analysis_seconds": round(analysis, 4),
        "analysis_seconds_again": round(analysis_again, 4),
        # A/A delta: the same analysis measured against itself (noise).
        "noise_pct": _pct(analysis_again, analysis),
        "gate_noise_lt_5pct": abs(_pct(analysis_again, analysis)) < 5.0,
        "stock_findings_total": sum(w["findings"]
                                    for w in workloads.values()),
        "gate_stock_clean": all(w["findings"] == 0
                                for w in workloads.values()),
        "workloads": workloads,
    }
    Path(out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    deltas = ", ".join(f"{n}={w['ipc_delta_pct']}%"
                       for n, w in workloads.items())
    print(f"spectre: analysis={record['analysis_seconds']}s "
          f"A/A noise={record['noise_pct']}% safe-vs-proposed IPC "
          f"[{deltas}] -> {out}", file=sys.stderr)
    return record


def bench_serve(scale: float, max_steps: int, workers: int = 2,
                out: str = "BENCH_serve.json") -> dict:
    """Measure the evaluation service: cold fan-out, warm replay, dedup.

    Runs an in-process :class:`~repro.serve.EvalServer` (ephemeral port,
    throwaway cache root) and times three phases through the real HTTP
    path:

    * **cold**   — one tenant submits the full suite grid against an
      empty store: every cell executes on the fleet;
    * **warm**   — the same tenant resubmits the same grid: every cell
      must be answered from its namespace at submission time (zero
      compiles, zero simulations, nothing enqueued);
    * **dedup**  — two *fresh* tenants submit an identical (new-seed)
      grid concurrently while the fleet is held at a gate: each unique
      cell must execute exactly once fleet-wide.

    The engine counters are process-local and the fleet runs on threads
    in this process, so "executed exactly once" is counted directly.
    """
    import tempfile as _tempfile
    import threading

    from repro.core.heuristics import DEFAULT_HEURISTICS
    from repro.serve import EvalServer, ServeClient, ServeConfig
    from repro.serve import worker as _worker
    from repro.serve.client import suite_cells
    from repro.workloads import benchmark_programs

    def _grid(seed: int) -> list:
        programs = benchmark_programs(scale, seed=seed)
        return [(key, payload) for _, _, key, _, payload in
                suite_cells(programs, DEFAULT_HEURISTICS, None, max_steps)]

    with _tempfile.TemporaryDirectory(prefix="bench-serve-") as d:
        config = ServeConfig(port=0, workers=workers, cache_dir=d,
                            rate=10_000.0, burst=10_000)
        with EvalServer(config) as server:
            alice = ServeClient(server.url, tenant="alice", timeout=3600.0)

            grid = _grid(seed=101)
            COUNTERS.reset()
            t0 = time.perf_counter()
            alice.run_cells(grid)
            cold = {"seconds": round(time.perf_counter() - t0, 4),
                    "cells": len(grid), "compiles": COUNTERS.compiles,
                    "simulates": COUNTERS.simulates}

            COUNTERS.reset()
            t0 = time.perf_counter()
            job = alice.submit_cells(grid)
            alice.results(job["job_id"])
            warm = {"seconds": round(time.perf_counter() - t0, 4),
                    "cells": len(grid), "compiles": COUNTERS.compiles,
                    "simulates": COUNTERS.simulates,
                    "cache_hits": job["n_cache_hits"]}

            # Two-tenant dedup on a fresh grid: hold the fleet until both
            # submissions are in, so the overlap is structural, not raced.
            gate = threading.Event()
            real_execute = _worker.execute_payload
            _worker.execute_payload = \
                lambda kind, spec: (gate.wait(3600.0),
                                    real_execute(kind, spec))[1]
            try:
                grid2 = _grid(seed=202)
                t1 = ServeClient(server.url, tenant="t1", timeout=3600.0)
                t2 = ServeClient(server.url, tenant="t2", timeout=3600.0)
                COUNTERS.reset()
                t0 = time.perf_counter()
                job1 = t1.submit_cells(grid2)
                job2 = t2.submit_cells(grid2)
                gate.set()
                t1.results(job1["job_id"])
                t2.results(job2["job_id"])
                dedup = {"seconds": round(time.perf_counter() - t0, 4),
                         "cells_submitted": 2 * len(grid2),
                         "unique_cells": len(grid2),
                         "deduped": job2["n_deduped"],
                         "compiles": COUNTERS.compiles,
                         "simulates": COUNTERS.simulates}
            finally:
                _worker.execute_payload = real_execute

            fleet_stats = server.fleet.stats()

    record = {
        "bench": "serve",
        "scale": scale,
        "workers": workers,
        "max_steps": max_steps,
        "phases": {"cold": cold, "warm": warm, "dedup": dedup},
        "fleet": {"cells_executed": fleet_stats["cells_executed"],
                  "utilization": fleet_stats["utilization"]},
        "speedup_warm_over_cold": round(
            cold["seconds"] / warm["seconds"], 2)
        if warm["seconds"] else None,
        "gate_warm_zero_work": (warm["compiles"] == 0
                                and warm["simulates"] == 0
                                and warm["cache_hits"] == warm["cells"]),
        "gate_dedup_exactly_once": (
            dedup["simulates"] == dedup["unique_cells"]
            and dedup["deduped"] == dedup["unique_cells"]),
    }
    Path(out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"serve: cold={cold['seconds']}s warm={warm['seconds']}s "
          f"dedup={dedup['seconds']}s "
          f"(warm-zero-work={record['gate_warm_zero_work']}, "
          f"dedup-once={record['gate_dedup_exactly_once']}) -> {out}",
          file=sys.stderr)
    return record


def bench_fastsim(scale: float, max_steps: int, repeats: int = 9,
                  out: str = "BENCH_fastsim.json") -> dict:
    """Measure the fast execution backend against the reference simulators.

    Three measurements over the stock workloads at *scale*, all with the
    engine's result cache cold (decode/codegen caches are warmed once per
    program first — their cost is one-time per program and is charged to
    the ``end_to_end`` figure instead):

    * **functional** (the headline, gated >= 10x) — one full functional
      run per workload with outcome recording on (the profiling
      configuration), reference vs generated-step, min-of-``repeats``
      with an A/A re-measure bounding timer noise;
    * **sim_path** (regression floor, gated >= 2.5x) — one full cell
      (functional + timing) per workload, reference pair vs
      decode-once + batched-event pair, min-of-3 (the timing model
      dominates, so fewer repeats suffice); the two payload dict pairs
      must be byte-identical;
    * **end_to_end** — one cold :func:`repro.engine.run_suite` per
      backend over throwaway caches (includes the shared compile cost,
      so this ratio is what a user actually feels; reported, not gated).
    """
    from repro.engine import run_suite as _run_suite
    from repro.fastsim import FastFunctionalSim
    from repro.fastsim.backend import simulate as fast_simulate
    from repro.sim import FunctionalSim, TimingSim, r10k_config
    from repro.workloads import benchmark_programs

    programs = benchmark_programs(scale)
    config = r10k_config("twobit")

    def _best(fn, n: int) -> float:
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    functional: dict[str, dict] = {}
    sim_path: dict[str, dict] = {}
    payloads_identical = True
    for name, prog in programs.items():
        # Warm the decode/codegen caches for both variants (record-mode
        # functional, trace-mode cell) before any clock starts.
        FastFunctionalSim(prog, max_steps=max_steps).run()
        fast_pair = fast_simulate(prog, config, max_steps=max_steps)

        ref_s = _best(lambda: FunctionalSim(
            prog, max_steps=max_steps, record_outcomes=True).run(), repeats)
        ref_again = _best(lambda: FunctionalSim(
            prog, max_steps=max_steps, record_outcomes=True).run(), repeats)
        fast_s = _best(lambda: FastFunctionalSim(
            prog, max_steps=max_steps, record_outcomes=True).run(), repeats)
        functional[name] = {
            "reference_s": round(ref_s, 4),
            "reference_again_s": round(ref_again, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(ref_s / fast_s, 2) if fast_s else None,
        }

        def _ref_cell():
            fsim = FunctionalSim(prog, max_steps=max_steps,
                                 record_outcomes=False)
            stats = TimingSim(config).run(fsim.trace())
            return stats, fsim.stats

        ref_pair = _ref_cell()
        payloads_identical &= (
            (ref_pair[0].to_dict(), ref_pair[1].to_dict())
            == (fast_pair[0].to_dict(), fast_pair[1].to_dict()))
        cell_ref = _best(_ref_cell, 3)
        cell_fast = _best(lambda: fast_simulate(prog, config,
                                                max_steps=max_steps), 3)
        sim_path[name] = {
            "reference_s": round(cell_ref, 4),
            "fast_s": round(cell_fast, 4),
            "speedup": round(cell_ref / cell_fast, 2) if cell_fast else None,
        }

    def _totals(rows: dict, key_ref: str = "reference_s") -> dict:
        ref = sum(r[key_ref] for r in rows.values())
        fast = sum(r["fast_s"] for r in rows.values())
        return {"reference_s": round(ref, 4), "fast_s": round(fast, 4),
                "speedup": round(ref / fast, 2) if fast else None}

    func_total = _totals(functional)
    ref_total = sum(r["reference_s"] for r in functional.values())
    again_total = sum(r["reference_again_s"] for r in functional.values())
    noise_pct = (round(100.0 * (again_total - ref_total) / ref_total, 2)
                 if ref_total else 0.0)
    sim_total = _totals(sim_path)

    end_to_end: dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="bench-fastsim-") as d:
        for backend in ("reference", "fast"):
            cache = ArtifactCache(Path(d) / backend)
            t0 = time.perf_counter()
            _run_suite(scale=scale, max_steps=max_steps, cache=cache,
                       backend=backend)
            end_to_end[f"{backend}_s"] = round(time.perf_counter() - t0, 4)
    end_to_end["speedup"] = (
        round(end_to_end["reference_s"] / end_to_end["fast_s"], 2)
        if end_to_end["fast_s"] else None)

    record = {
        "bench": "fastsim",
        "scale": scale,
        "repeats": repeats,
        "max_steps": max_steps,
        "semantics": ("engine result cache cold; decode/codegen caches "
                      "warm (their one-time cost is charged to "
                      "end_to_end, which runs everything cold)"),
        "functional": {"workloads": functional, "total": func_total,
                       "noise_pct": noise_pct},
        "sim_path": {"workloads": sim_path, "total": sim_total},
        "end_to_end": end_to_end,
        "gate_functional_ge_10x": (func_total["speedup"] or 0) >= 10.0,
        "gate_sim_path_ge_2_5x": (sim_total["speedup"] or 0) >= 2.5,
        "gate_payloads_identical": payloads_identical,
        "gate_noise_lt_5pct": abs(noise_pct) < 5.0,
    }
    Path(out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"fastsim: functional={func_total['speedup']}x "
          f"(A/A noise={noise_pct}%) sim-path={sim_total['speedup']}x "
          f"end-to-end={end_to_end['speedup']}x "
          f"payloads-identical={payloads_identical} -> {out}",
          file=sys.stderr)
    return record


def bench_tune(scale: float, max_steps: int, repeats: int = 9,
               budget: int = 24, out: str = "BENCH_tune.json") -> dict:
    """Measure the closed-loop tuner: learned-vs-default IPC and resume.

    One deterministic micro-search (seed 0, *budget* evaluations) over
    the paper's four Figure 6 thresholds, then:

    * **learned-vs-paper gate** — the per-workload winning vector must
      strictly beat ``DEFAULT_HEURISTICS`` IPC on at least one stock
      workload while staying within 5% code growth of the default
      compile (winners are slack-constrained by construction; the gate
      asserts a strict improvement exists).  IPC comes from the
      cycle-exact timing simulator, so no repeat sampling applies to it;
    * **resume gate** — re-running the identical search against the warm
      cache must execute **zero** cells (compile/simulate counters stay
      at 0: the result-level entry answers first, and every cell behind
      it is a content-addressed hit);
    * **resume latency** — wall-clock of the warm resume, min-of-
      ``repeats`` measured twice (the A/A delta bounds timer noise),
      plus the cold-search seconds it replaces.
    """
    from repro.tune import DEFAULT_PARAM_NAMES, ParamSpec, TuneSpec, \
        run_tune

    spec = TuneSpec(
        params=tuple(ParamSpec(n) for n in DEFAULT_PARAM_NAMES),
        scale=scale, budget=budget, seed=0, max_steps=max_steps)

    with tempfile.TemporaryDirectory(prefix="bench-tune-") as d:
        cache = ArtifactCache(Path(d) / "cache")
        t0 = time.perf_counter()
        result = run_tune(spec, cache=cache, jobs=1)
        cold_s = time.perf_counter() - t0

        COUNTERS.reset()
        resumed = run_tune(spec, cache=cache, jobs=1)
        resume_compiles = COUNTERS.compiles
        resume_simulates = COUNTERS.simulates

        def _best_resume() -> float:
            times = []
            for _ in range(repeats):
                t = time.perf_counter()
                run_tune(spec, cache=cache, jobs=1)
                times.append(time.perf_counter() - t)
            return min(times)

        resume_s = _best_resume()
        resume_again_s = _best_resume()

    def _pct(new: float, base: float) -> float:
        return round(100.0 * (new - base) / base, 2) if base else 0.0

    workloads = {
        bench: {
            "candidate": w["candidate"],
            "params": w["params"],
            "ipc_tuned": round(w["ipc"], 4),
            "ipc_default": round(w["default_ipc"], 4),
            "ipc_gain_pct": round(w["ipc_gain_pct"], 2),
            "code_growth": round(w["code_growth"], 4),
            "code_growth_vs_default_pct": _pct(
                w["code_growth"], w["default_code_growth"]),
        }
        for bench, w in sorted(result.per_workload.items())
    }
    improved = [b for b, w in workloads.items()
                if w["ipc_tuned"] > w["ipc_default"]
                and w["code_growth_vs_default_pct"] <= 5.0]

    record = {
        "bench": "tune",
        "scale": scale,
        "budget": budget,
        "seed": spec.seed,
        "repeats": repeats,
        "evaluations": result.evaluations,
        "candidates": len(result.candidates),
        "pareto_size": len(result.pareto),
        "cells_hit": result.cells_hit,
        "cells_executed": result.cells_executed,
        "cold_seconds": round(cold_s, 4),
        "resume_seconds": round(resume_s, 4),
        "resume_seconds_again": round(resume_again_s, 4),
        "noise_pct": _pct(resume_again_s, resume_s),
        "gate_noise_lt_5pct": abs(_pct(resume_again_s, resume_s)) < 5.0,
        "resume_compiles": resume_compiles,
        "resume_simulates": resume_simulates,
        "gate_resume_zero_cells": (resume_compiles == 0
                                   and resume_simulates == 0),
        "resume_identical": resumed.to_dict() == result.to_dict(),
        "improved_workloads": improved,
        "gate_tuned_beats_default": bool(improved),
        "workloads": workloads,
    }
    Path(out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    gains = ", ".join(f"{b}=+{workloads[b]['ipc_gain_pct']}%"
                      for b in improved) or "none"
    print(f"tune: {result.evaluations} evaluations cold={cold_s:.2f}s "
          f"resume={resume_s:.4f}s (0 cells: "
          f"{record['gate_resume_zero_cells']}) improved [{gains}] "
          f"-> {out}", file=sys.stderr)
    return record


def bench_ingest(max_steps: int, repeats: int = 9,
                 fixtures: str = "tests/ingest/fixtures",
                 out: str = "BENCH_ingest.json") -> dict:
    """Measure the import front end and the melded scheme (ISSUE 10).

    Two questions over the committed fixture corpus:

    * **front-end cost** — wall-clock of parse + lower + verify for the
      whole corpus (sources and traces), min-of-``repeats`` measured
      twice so the A/A delta bounds timer noise (the same estimator as
      :func:`bench_obs_overhead`);
    * **melded vs guarded** — for every imported *source* workload, one
      deterministic compile per scheme (plain ``Proposed`` = guarded
      baseline, ``enable_meld`` = melded) and the cycle-exact IPC from
      the timing simulator, plus static code growth and the number of
      diamonds actually melded.  Simulation is deterministic, so no
      repeat sampling applies there.  The gate demands that at least one
      imported workload melds at least one diamond — otherwise the
      scheme column would be measuring nothing.
    """
    from dataclasses import replace

    from repro.core import compile_proposed
    from repro.core.heuristics import DEFAULT_HEURISTICS
    from repro.ingest import expand_fixtures, import_path
    from repro.sim import r10k_config, simulate

    root = Path(fixtures)
    files = expand_fixtures([root])
    if not files:
        raise SystemExit(f"no ingest fixtures under {root}")
    config = r10k_config("twobit")
    meld_heur = replace(DEFAULT_HEURISTICS, enable_meld=True)

    def _best_ingest() -> float:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            for path in files:
                import_path(path)
            times.append(time.perf_counter() - t0)
        return min(times)

    ingest_s = _best_ingest()
    ingest_again_s = _best_ingest()

    workloads: dict[str, dict] = {}
    for path in files:
        if path.suffix != ".bril":
            continue  # traces measure the front end; schemes want sources
        prog = import_path(path)
        guarded = compile_proposed(prog, max_steps=max_steps)
        melded = compile_proposed(prog, heur=meld_heur, max_steps=max_steps)
        g_ipc = simulate(guarded.program, config).ipc
        m_ipc = simulate(melded.program, config).ipc
        workloads[path.stem] = {
            "program": prog.name,
            "melds_applied": melded.melds_applied,
            "ipc_guarded": round(g_ipc, 4),
            "ipc_melded": round(m_ipc, 4),
            "ipc_delta_pct": round(100.0 * (m_ipc - g_ipc) / g_ipc, 2)
            if g_ipc else 0.0,
            "code_growth_pct": round(
                100.0 * (len(melded.program) - len(guarded.program))
                / len(guarded.program), 2) if len(guarded.program) else 0.0,
        }

    def _pct(new: float, base: float) -> float:
        return round(100.0 * (new - base) / base, 2) if base else 0.0

    record = {
        "bench": "ingest",
        "fixtures": len(files),
        "repeats": repeats,
        "ingest_seconds": round(ingest_s, 4),
        "ingest_seconds_again": round(ingest_again_s, 4),
        # A/A delta: the same front-end pass measured against itself.
        "noise_pct": _pct(ingest_again_s, ingest_s),
        "gate_noise_lt_5pct": abs(_pct(ingest_again_s, ingest_s)) < 5.0,
        "melds_total": sum(w["melds_applied"] for w in workloads.values()),
        "gate_some_workload_melds": any(w["melds_applied"] > 0
                                        for w in workloads.values()),
        "workloads": workloads,
    }
    Path(out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    deltas = ", ".join(
        f"{n}={w['ipc_delta_pct']}%({w['melds_applied']})"
        for n, w in workloads.items() if w["melds_applied"])
    print(f"ingest: {len(files)} fixtures in {record['ingest_seconds']}s "
          f"A/A noise={record['noise_pct']}% melded-vs-guarded IPC "
          f"[{deltas or 'no melds'}] -> {out}", file=sys.stderr)
    return record


def main(argv: list[str] | None = None) -> int:
    """Time the three phases and write the JSON record."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=0.1,
                    help="workload scale factor (default 0.1)")
    ap.add_argument("--jobs", type=int, default=max(2, os.cpu_count() or 2),
                    help="worker processes for the parallel phase")
    ap.add_argument("--max-steps", type=int, default=50_000_000,
                    help="per-cell functional step budget")
    ap.add_argument("--out", default="BENCH_engine.json",
                    help="output path (default BENCH_engine.json)")
    ap.add_argument("--obs-out", default="BENCH_obs.json",
                    help="observability-overhead output path "
                         "(default BENCH_obs.json)")
    ap.add_argument("--skip-obs", action="store_true",
                    help="skip the observability-overhead phase")
    ap.add_argument("--spectre-out", default="BENCH_spectre.json",
                    help="speculative-safety output path "
                         "(default BENCH_spectre.json)")
    ap.add_argument("--skip-spectre", action="store_true",
                    help="skip the speculative-safety phase")
    ap.add_argument("--serve-out", default="BENCH_serve.json",
                    help="evaluation-service output path "
                         "(default BENCH_serve.json)")
    ap.add_argument("--skip-serve", action="store_true",
                    help="skip the evaluation-service phase")
    ap.add_argument("--fastsim-out", default="BENCH_fastsim.json",
                    help="fast-backend output path "
                         "(default BENCH_fastsim.json)")
    ap.add_argument("--skip-fastsim", action="store_true",
                    help="skip the fast-backend phase")
    ap.add_argument("--tune-out", default="BENCH_tune.json",
                    help="autotuning output path (default BENCH_tune.json)")
    ap.add_argument("--skip-tune", action="store_true",
                    help="skip the autotuning phase")
    ap.add_argument("--tune-budget", type=int, default=24,
                    help="candidate-evaluation budget for the tune phase")
    ap.add_argument("--ingest-out", default="BENCH_ingest.json",
                    help="ingest/meld output path "
                         "(default BENCH_ingest.json)")
    ap.add_argument("--skip-ingest", action="store_true",
                    help="skip the ingest/meld phase")
    args = ap.parse_args(argv)

    phases: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as d:
        cache = ArtifactCache(Path(d) / "serial")
        print(f"cold   (scale={args.scale}, jobs=1) ...", file=sys.stderr)
        phases["cold"] = _timed_run(args.scale, args.max_steps, cache)
        print(f"warm   (scale={args.scale}, jobs=1) ...", file=sys.stderr)
        phases["warm"] = _timed_run(args.scale, args.max_steps, cache)
        par_cache = ArtifactCache(Path(d) / "parallel")
        print(f"parallel (scale={args.scale}, jobs={args.jobs}) ...",
              file=sys.stderr)
        phases["parallel"] = _timed_run(args.scale, args.max_steps,
                                        par_cache, jobs=args.jobs)

    cold_s = phases["cold"]["seconds"]
    record = {
        "bench": "engine_suite",
        "scale": args.scale,
        "jobs": args.jobs,
        # Parallel speedup is bounded by physical cores; a 1-core host
        # can only show that fan-out overhead is small, not a win.
        "cpu_count": os.cpu_count(),
        "max_steps": args.max_steps,
        "phases": phases,
        "speedup_warm_over_cold": round(
            cold_s / phases["warm"]["seconds"], 2)
        if phases["warm"]["seconds"] else None,
        "speedup_parallel_over_cold": round(
            cold_s / phases["parallel"]["seconds"], 2)
        if phases["parallel"]["seconds"] else None,
        "cold_gt_warm": cold_s > phases["warm"]["seconds"],
    }
    Path(args.out).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"cold={cold_s}s warm={phases['warm']['seconds']}s "
          f"parallel={phases['parallel']['seconds']}s "
          f"-> {args.out}", file=sys.stderr)
    rc = 0
    if not args.skip_obs:
        print(f"obs overhead (scale={args.scale}) ...", file=sys.stderr)
        obs = bench_obs_overhead(args.scale, args.max_steps,
                                 out=args.obs_out)
        if not obs["gate_disabled_lt_5pct"]:
            print("WARNING: disabled-observability overhead exceeded 5%",
                  file=sys.stderr)
            rc = 1
    if not args.skip_spectre:
        print(f"spectre (scale={args.scale}) ...", file=sys.stderr)
        spec = bench_spectre(args.scale, args.max_steps,
                             out=args.spectre_out)
        if not spec["gate_stock_clean"]:
            print("WARNING: spectre analysis flagged a stock workload",
                  file=sys.stderr)
            rc = 1
        if not spec["gate_noise_lt_5pct"]:
            print("WARNING: spectre analysis A/A noise exceeded 5%",
                  file=sys.stderr)
            rc = 1
    if not args.skip_serve:
        print(f"serve (scale={args.scale}, workers={args.jobs}) ...",
              file=sys.stderr)
        srv = bench_serve(args.scale, args.max_steps, workers=args.jobs,
                          out=args.serve_out)
        if not srv["gate_warm_zero_work"]:
            print("WARNING: serve warm replay performed work",
                  file=sys.stderr)
            rc = 1
        if not srv["gate_dedup_exactly_once"]:
            print("WARNING: serve dedup executed cells more than once",
                  file=sys.stderr)
            rc = 1
    if not args.skip_fastsim:
        print(f"fastsim (scale={args.scale}) ...", file=sys.stderr)
        fs = bench_fastsim(args.scale, args.max_steps,
                           out=args.fastsim_out)
        if not fs["gate_payloads_identical"]:
            print("WARNING: fast backend payloads diverged from reference",
                  file=sys.stderr)
            rc = 1
        if not fs["gate_functional_ge_10x"]:
            print("WARNING: fast functional speedup fell below 10x",
                  file=sys.stderr)
            rc = 1
        if not fs["gate_sim_path_ge_2_5x"]:
            print("WARNING: fast sim-path speedup fell below 2.5x",
                  file=sys.stderr)
            rc = 1
        if not fs["gate_noise_lt_5pct"]:
            print("WARNING: fastsim A/A noise exceeded 5%", file=sys.stderr)
            rc = 1
    if not args.skip_tune:
        print(f"tune (scale={args.scale}, budget={args.tune_budget}) ...",
              file=sys.stderr)
        tn = bench_tune(args.scale, args.max_steps,
                        budget=args.tune_budget, out=args.tune_out)
        if not tn["gate_tuned_beats_default"]:
            print("WARNING: tuner found no workload beating the paper "
                  "defaults within 5% code growth", file=sys.stderr)
            rc = 1
        if not tn["gate_resume_zero_cells"]:
            print("WARNING: resumed tune search executed cells",
                  file=sys.stderr)
            rc = 1
        if not tn["gate_noise_lt_5pct"]:
            print("WARNING: tune resume A/A noise exceeded 5%",
                  file=sys.stderr)
            rc = 1
    if not args.skip_ingest:
        print("ingest (fixture corpus) ...", file=sys.stderr)
        ing = bench_ingest(args.max_steps, out=args.ingest_out)
        if not ing["gate_some_workload_melds"]:
            print("WARNING: no imported workload melded any diamond",
                  file=sys.stderr)
            rc = 1
        if not ing["gate_noise_lt_5pct"]:
            print("WARNING: ingest A/A noise exceeded 5%", file=sys.stderr)
            rc = 1
    if not record["cold_gt_warm"]:
        print("WARNING: warm run was not faster than cold", file=sys.stderr)
        return 1
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
