#!/usr/bin/env python
"""Benchmark the evaluation engine: cold vs warm vs parallel suite runs.

Times three phases over a throwaway cache directory:

* **cold**     — empty cache, serial: every cell compiles and simulates;
* **warm**     — same cache, serial: every cell must hit the artifact
  store (the engine's whole point — wall-clock should collapse);
* **parallel** — empty cache again, ``--jobs N``: cold work fanned out
  over worker processes.

Writes ``BENCH_engine.json`` with wall-clock seconds per phase, the
compile/simulate counter totals, cache hit rates, the pool's execution
decision per phase (``serial``/``serial-oversubscribed``/``parallel``,
see :func:`repro.engine.pool.execution_mode`), and the warm/parallel
speedups over cold.  Counters are per-process, so a genuinely parallel
phase reports 0 compiles/simulates in this (parent) process — the work
shows up in its cache misses instead.

A fourth phase measures **observability overhead**: the same pipeline
trace replayed through :class:`~repro.sim.pipeline.TimingSim` with
observability disabled (twice — the A/A delta bounds timer noise) and
enabled; the disabled overhead must stay under 5 %.  Written separately
to ``BENCH_obs.json``.  Run from the repository root::

    python tools/bench_suite.py [--scale 0.1] [--jobs 4] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import COUNTERS, ArtifactCache, run_suite  # noqa: E402
from repro.engine import pool as _pool  # noqa: E402


def _timed_run(scale: float, max_steps: int, cache: ArtifactCache,
               jobs: int = 1) -> dict:
    """One suite run; returns wall-clock plus counter/cache deltas."""
    COUNTERS.reset()
    cache.counters.reset()
    _pool.LAST_DECISION = None
    t0 = time.perf_counter()
    runs = run_suite(scale=scale, max_steps=max_steps, cache=cache,
                     jobs=jobs)
    elapsed = time.perf_counter() - t0
    failed = [f"{name}/{cell.scheme}"
              for name, run in runs.items()
              for cell in run.results.values() if not cell.ok]
    return {
        "seconds": round(elapsed, 4),
        "compiles": COUNTERS.compiles,
        "simulates": COUNTERS.simulates,
        "cache_hits": cache.counters.hits,
        "cache_misses": cache.counters.misses,
        "hit_rate": round(cache.counters.hit_rate, 4),
        "failed_cells": failed,
        # None when jobs=1 short-circuited before the pool was consulted.
        "pool_decision": (_pool.LAST_DECISION.to_dict()
                          if _pool.LAST_DECISION else None),
    }


def bench_obs_overhead(scale: float, max_steps: int, repeats: int = 9,
                       out: str = "BENCH_obs.json") -> dict:
    """Measure the observability layer's overhead on ``sim.pipeline``.

    Materializes one benchmark's dynamic trace, then replays it through
    :class:`TimingSim` ``repeats`` times per mode, taking the minimum
    (the standard noise-robust estimator for timing microbenchmarks —
    scheduler preemptions only ever add time):

    * ``disabled``       — ``observer=None`` (the default production path);
    * ``disabled_again`` — the same thing re-measured, so the A/A delta
      reports how much of any "overhead" is just timer noise;
    * ``enabled``        — metrics registry on + a PipelineObserver.

    The acceptance gate is on the *disabled* path: with the registry off
    and no observer the simulator must run the pre-observability code,
    so its overhead bound is the A/A noise figure.
    """
    from repro.obs import PipelineObserver, metrics_disable, metrics_enable
    from repro.sim import FunctionalSim, TimingSim, r10k_config
    from repro.workloads import benchmark_programs

    prog = benchmark_programs(scale)["compress"]
    entries = list(FunctionalSim(prog, max_steps=max_steps,
                                 record_outcomes=False).trace())
    config = r10k_config("twobit")

    def _best(observed: bool) -> float:
        times = []
        for _ in range(repeats):
            observer = PipelineObserver() if observed else None
            t0 = time.perf_counter()
            TimingSim(config, observer=observer).run(iter(entries))
            times.append(time.perf_counter() - t0)
        return min(times)

    metrics_disable()
    disabled = _best(False)
    disabled_again = _best(False)
    metrics_enable()
    enabled = _best(True)
    metrics_disable()

    def _pct(new: float, base: float) -> float:
        return round(100.0 * (new - base) / base, 2) if base else 0.0

    record = {
        "bench": "obs_overhead",
        "scale": scale,
        "trace_entries": len(entries),
        "repeats": repeats,
        "seconds": {"disabled": round(disabled, 4),
                    "disabled_again": round(disabled_again, 4),
                    "enabled": round(enabled, 4)},
        # A/A delta: what the same code measures against itself (noise).
        "noise_pct": _pct(disabled_again, disabled),
        "overhead_disabled_pct": _pct(disabled_again, disabled),
        "overhead_enabled_pct": _pct(enabled, disabled),
        "gate_disabled_lt_5pct": abs(_pct(disabled_again, disabled)) < 5.0,
    }
    Path(out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"obs overhead: disabled={record['seconds']['disabled']}s "
          f"A/A noise={record['noise_pct']}% "
          f"enabled=+{record['overhead_enabled_pct']}% -> {out}",
          file=sys.stderr)
    return record


def main(argv: list[str] | None = None) -> int:
    """Time the three phases and write the JSON record."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=0.1,
                    help="workload scale factor (default 0.1)")
    ap.add_argument("--jobs", type=int, default=max(2, os.cpu_count() or 2),
                    help="worker processes for the parallel phase")
    ap.add_argument("--max-steps", type=int, default=50_000_000,
                    help="per-cell functional step budget")
    ap.add_argument("--out", default="BENCH_engine.json",
                    help="output path (default BENCH_engine.json)")
    ap.add_argument("--obs-out", default="BENCH_obs.json",
                    help="observability-overhead output path "
                         "(default BENCH_obs.json)")
    ap.add_argument("--skip-obs", action="store_true",
                    help="skip the observability-overhead phase")
    args = ap.parse_args(argv)

    phases: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as d:
        cache = ArtifactCache(Path(d) / "serial")
        print(f"cold   (scale={args.scale}, jobs=1) ...", file=sys.stderr)
        phases["cold"] = _timed_run(args.scale, args.max_steps, cache)
        print(f"warm   (scale={args.scale}, jobs=1) ...", file=sys.stderr)
        phases["warm"] = _timed_run(args.scale, args.max_steps, cache)
        par_cache = ArtifactCache(Path(d) / "parallel")
        print(f"parallel (scale={args.scale}, jobs={args.jobs}) ...",
              file=sys.stderr)
        phases["parallel"] = _timed_run(args.scale, args.max_steps,
                                        par_cache, jobs=args.jobs)

    cold_s = phases["cold"]["seconds"]
    record = {
        "bench": "engine_suite",
        "scale": args.scale,
        "jobs": args.jobs,
        # Parallel speedup is bounded by physical cores; a 1-core host
        # can only show that fan-out overhead is small, not a win.
        "cpu_count": os.cpu_count(),
        "max_steps": args.max_steps,
        "phases": phases,
        "speedup_warm_over_cold": round(
            cold_s / phases["warm"]["seconds"], 2)
        if phases["warm"]["seconds"] else None,
        "speedup_parallel_over_cold": round(
            cold_s / phases["parallel"]["seconds"], 2)
        if phases["parallel"]["seconds"] else None,
        "cold_gt_warm": cold_s > phases["warm"]["seconds"],
    }
    Path(args.out).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"cold={cold_s}s warm={phases['warm']['seconds']}s "
          f"parallel={phases['parallel']['seconds']}s "
          f"-> {args.out}", file=sys.stderr)
    rc = 0
    if not args.skip_obs:
        print(f"obs overhead (scale={args.scale}) ...", file=sys.stderr)
        obs = bench_obs_overhead(args.scale, args.max_steps,
                                 out=args.obs_out)
        if not obs["gate_disabled_lt_5pct"]:
            print("WARNING: disabled-observability overhead exceeded 5%",
                  file=sys.stderr)
            rc = 1
    if not record["cold_gt_warm"]:
        print("WARNING: warm run was not faster than cold", file=sys.stderr)
        return 1
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
