#!/usr/bin/env python
"""Benchmark the evaluation engine: cold vs warm vs parallel suite runs.

Times three phases over a throwaway cache directory:

* **cold**     — empty cache, serial: every cell compiles and simulates;
* **warm**     — same cache, serial: every cell must hit the artifact
  store (the engine's whole point — wall-clock should collapse);
* **parallel** — empty cache again, ``--jobs N``: cold work fanned out
  over worker processes.

Writes ``BENCH_engine.json`` with wall-clock seconds per phase, the
compile/simulate counter totals, cache hit rates, and the warm/parallel
speedups over cold.  Counters are per-process, so the parallel phase
reports 0 compiles/simulates in this (parent) process — the work shows
up in its cache misses instead.  Run from the repository root::

    python tools/bench_suite.py [--scale 0.1] [--jobs 4] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import COUNTERS, ArtifactCache, run_suite  # noqa: E402


def _timed_run(scale: float, max_steps: int, cache: ArtifactCache,
               jobs: int = 1) -> dict:
    """One suite run; returns wall-clock plus counter/cache deltas."""
    COUNTERS.reset()
    cache.counters.reset()
    t0 = time.perf_counter()
    runs = run_suite(scale=scale, max_steps=max_steps, cache=cache,
                     jobs=jobs)
    elapsed = time.perf_counter() - t0
    failed = [f"{name}/{cell.scheme}"
              for name, run in runs.items()
              for cell in run.results.values() if not cell.ok]
    return {
        "seconds": round(elapsed, 4),
        "compiles": COUNTERS.compiles,
        "simulates": COUNTERS.simulates,
        "cache_hits": cache.counters.hits,
        "cache_misses": cache.counters.misses,
        "hit_rate": round(cache.counters.hit_rate, 4),
        "failed_cells": failed,
    }


def main(argv: list[str] | None = None) -> int:
    """Time the three phases and write the JSON record."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=0.1,
                    help="workload scale factor (default 0.1)")
    ap.add_argument("--jobs", type=int, default=max(2, os.cpu_count() or 2),
                    help="worker processes for the parallel phase")
    ap.add_argument("--max-steps", type=int, default=50_000_000,
                    help="per-cell functional step budget")
    ap.add_argument("--out", default="BENCH_engine.json",
                    help="output path (default BENCH_engine.json)")
    args = ap.parse_args(argv)

    phases: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as d:
        cache = ArtifactCache(Path(d) / "serial")
        print(f"cold   (scale={args.scale}, jobs=1) ...", file=sys.stderr)
        phases["cold"] = _timed_run(args.scale, args.max_steps, cache)
        print(f"warm   (scale={args.scale}, jobs=1) ...", file=sys.stderr)
        phases["warm"] = _timed_run(args.scale, args.max_steps, cache)
        par_cache = ArtifactCache(Path(d) / "parallel")
        print(f"parallel (scale={args.scale}, jobs={args.jobs}) ...",
              file=sys.stderr)
        phases["parallel"] = _timed_run(args.scale, args.max_steps,
                                        par_cache, jobs=args.jobs)

    cold_s = phases["cold"]["seconds"]
    record = {
        "bench": "engine_suite",
        "scale": args.scale,
        "jobs": args.jobs,
        # Parallel speedup is bounded by physical cores; a 1-core host
        # can only show that fan-out overhead is small, not a win.
        "cpu_count": os.cpu_count(),
        "max_steps": args.max_steps,
        "phases": phases,
        "speedup_warm_over_cold": round(
            cold_s / phases["warm"]["seconds"], 2)
        if phases["warm"]["seconds"] else None,
        "speedup_parallel_over_cold": round(
            cold_s / phases["parallel"]["seconds"], 2)
        if phases["parallel"]["seconds"] else None,
        "cold_gt_warm": cold_s > phases["warm"]["seconds"],
    }
    Path(args.out).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"cold={cold_s}s warm={phases['warm']['seconds']}s "
          f"parallel={phases['parallel']['seconds']}s "
          f"-> {args.out}", file=sys.stderr)
    if not record["cold_gt_warm"]:
        print("WARNING: warm run was not faster than cold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
