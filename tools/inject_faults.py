#!/usr/bin/env python3
"""Fault-injection harness: prove every fault class is caught.

Runs the full taxonomy from :mod:`repro.robust.faults` against real
benchmark programs and reports, per (fault class, benchmark), which layer
of the containment ladder fired:

* ``verifier``  — static IR checks flagged the corruption;
* ``diffcheck`` — co-simulation against the pristine program diverged;
* ``sandbox``   — the pass sandbox contained the buggy pass and rolled
  the CFG back;
* ``tolerated`` — corrupted *feedback* was absorbed: the compile still
  produced a verified, architecturally equivalent program.

A fault that slips through every layer is UNCAUGHT and the harness exits
nonzero — this script is the executable claim behind docs/ROBUSTNESS.md.

``--fuzz`` additionally drives the :mod:`repro.qa` campaign machinery
end to end against deliberately miscompiled programs: each diffcheck-class
fault is injected into fuzz-generated programs and must be (1) caught by
the equivalence oracle, (2) shrunk to a minimal reproducer (<= 25
instructions), and (3) triaged into a stable bucket — the executable
claim behind docs/QA.md.

``--fastsim`` sweeps the :mod:`repro.fastsim.faults` classes instead:
each one corrupts the fast execution backend internally (broken codegen,
stale decode tables, a crash inside generated code), and the contained
verdict requires that (1) the run transparently fell back to the
reference interpreter at the documented stage and (2) the resulting
``SimStats``/``ExecStats`` payloads are byte-identical to a pure
reference run — the executable claim behind docs/FASTSIM.md.

Run:  python tools/inject_faults.py [--scale 0.1] [--benchmarks a,b]
                                    [--fuzz] [--fuzz-seed N] [--fastsim]
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cfg.graph import build_cfg  # noqa: E402
from repro.core.pipeline import compile_proposed  # noqa: E402
from repro.isa.program import Program  # noqa: E402
from repro.profilefb.profiledb import ProfileDB  # noqa: E402
from repro.robust.diffcheck import check_equivalence  # noqa: E402
from repro.robust.faults import (  # noqa: E402
    PASS_FAULTS, PROFILE_FAULTS, PROGRAM_FAULTS, buggy_pass, corrupt_profile,
    inject_program_fault,
)
from repro.robust.sandbox import PassSandbox  # noqa: E402
from repro.robust.verifier import verify_program  # noqa: E402
from repro.sim.functional import FunctionalSim  # noqa: E402
from repro.workloads import benchmark_programs  # noqa: E402

#: Step budget for co-simulation runs (benchmarks here are small-scale).
MAX_STEPS = 5_000_000


def _counts(prog: Program) -> list[int]:
    """Dynamic per-instruction execution counts of the pristine program."""
    sim = FunctionalSim(prog, max_steps=MAX_STEPS, record_outcomes=False)
    sim.run()
    return sim.index_counts


def check_program_fault(name: str, prog: Program,
                        counts: list[int]) -> tuple[bool, str]:
    """Inject one program fault class; return (caught, layer).

    Verifier-class faults must be flagged *statically* on every candidate.
    Diffcheck-class faults must diverge on at least one candidate (a
    candidate diffcheck proves equivalent changed nothing observable and
    is benign by construction).
    """
    expected = PROGRAM_FAULTS[name][0].detector
    candidates = list(inject_program_fault(name, prog, random.Random(0),
                                           counts))
    if not candidates:
        return True, "n/a (no injection site)"
    if expected == "verifier":
        missed = [bad for bad in candidates if not verify_program(bad)]
        if missed:
            return False, f"UNCAUGHT ({len(missed)} candidate(s) verified)"
        return True, "verifier"
    flagged = 0
    for bad in candidates:
        if verify_program(bad):
            flagged += 1  # caught even earlier than expected
        elif not check_equivalence(prog, bad, max_steps=MAX_STEPS):
            flagged += 1
    if not flagged:
        return False, "UNCAUGHT (no candidate diverged)"
    return True, f"diffcheck ({flagged}/{len(candidates)} diverged)"


def check_profile_fault(name: str, prog: Program) -> tuple[bool, str]:
    """Corrupt the feedback; the compile must stay semantics-preserving."""
    db = corrupt_profile(name, ProfileDB.from_run(prog, max_steps=MAX_STEPS))
    result = compile_proposed(prog, profile=db, max_steps=MAX_STEPS)
    if verify_program(result.program):
        return False, "UNCAUGHT (emitted invalid IR)"
    if not check_equivalence(prog, result.program, max_steps=MAX_STEPS):
        return False, "UNCAUGHT (semantics corrupted)"
    return True, "tolerated"


def check_pass_fault(name: str, prog: Program) -> tuple[bool, str]:
    """Run a synthetic buggy pass in the sandbox; rollback must hold."""
    cfg = build_cfg(prog)
    box = PassSandbox(cfg)
    fn = buggy_pass(name)
    box.run(name, lambda: fn(cfg))
    if not box.contained:
        return False, "UNCAUGHT (no failure recorded)"
    restored = cfg.to_program(prog.name + ".restored")
    if verify_program(restored):
        return False, "UNCAUGHT (rollback left invalid IR)"
    if not check_equivalence(prog, restored, max_steps=MAX_STEPS):
        return False, "UNCAUGHT (rollback changed semantics)"
    return True, "sandbox"


#: Fault classes the --fuzz mode exercises (silent miscompiles: the ones
#: only the differential oracle can catch).
FUZZ_FAULTS = ("swapped-operands", "clobbered-register", "branch-retarget")
#: The qa acceptance bar: every injected fault must shrink to this size.
FUZZ_SHRINK_LIMIT = 25
#: Candidate-run step budget during --fuzz shrinking (programs are tiny).
FUZZ_STEP_CAP = 200_000


def _fault_oracle(fault: str):
    """Oracle factory: does injecting *fault* into a candidate diverge?

    Returns ``(oracle, classify)`` where ``classify(prog)`` gives the
    divergence kind of the first diverging injection (or None).
    """
    def classify(candidate: Program):
        for bad in inject_program_fault(fault, candidate, random.Random(0)):
            report = check_equivalence(candidate, bad,
                                       max_steps=FUZZ_STEP_CAP)
            if not report.equivalent:
                return report
        return None

    def oracle(candidate: Program) -> bool:
        return classify(candidate) is not None

    return oracle, classify


def check_fuzz_pipeline(seed: int) -> int:
    """Prove the qa loop catches, shrinks, and buckets injected faults."""
    from repro.isa.printer import format_program
    from repro.isa.randprog import random_program
    from repro.qa import TriageEntry, shrink_program

    failures = 0
    print(f"fuzz pipeline (seed {seed}):")
    for fault in FUZZ_FAULTS:
        oracle, classify = _fault_oracle(fault)
        prog = report = None
        for s in range(seed, seed + 20):
            candidate = random_program(s)
            report = classify(candidate)
            if report is not None:
                prog = candidate
                break
        if prog is None:
            print(f"  {fault:<22} UNCAUGHT  [no divergence in 20 programs]")
            failures += 1
            continue
        kind = report.kind
        anchored = lambda c, _k=kind, _cl=classify: (  # noqa: E731
            (r := _cl(c)) is not None and r.kind == _k)
        shrunk = shrink_program(prog, anchored)
        entry = TriageEntry(
            strategy="inject", seed=s, scheme=fault, kind=kind,
            location=report.first_diff, failing_pass=fault,
            report=report.to_dict(),
            program_text=format_program(prog),
            shrunk_text=format_program(shrunk.program),
            shrink=shrunk.to_dict())
        ok = shrunk.shrunk_len <= FUZZ_SHRINK_LIMIT
        failures += not ok
        print(f"  {fault:<22} {'caught' if ok else 'UNSHRUNK':<9} "
              f"[{shrunk.original_len} -> {shrunk.shrunk_len} instrs, "
              f"bucket {entry.bucket}]")
    print(f"\nfuzz pipeline: "
          + ("all faults caught, shrunk and bucketed" if not failures
             else f"{failures} FAILED"))
    return failures


def check_fastsim_faults(programs: dict) -> int:
    """Sweep the fastsim fault classes; returns the UNCAUGHT count."""
    from repro.fastsim import backend as fast_backend
    from repro.fastsim.faults import FASTSIM_FAULTS, inject_fastsim_fault
    from repro.sim.config import r10k_config
    from repro.sim.pipeline import TimingSim

    cfg = r10k_config("twobit")
    failures = 0
    for bench, prog in programs.items():
        fsim = FunctionalSim(prog, max_steps=MAX_STEPS,
                             record_outcomes=False)
        want = (TimingSim(cfg).run(fsim.trace()).to_dict(),
                fsim.stats.to_dict())
        print(f"{bench} (fastsim backend):")
        for name in FASTSIM_FAULTS:
            fast_backend.clear_fallback_trail()
            try:
                with inject_fastsim_fault(name):
                    stats, exec_stats = fast_backend.simulate(
                        prog, cfg, max_steps=MAX_STEPS)
            except Exception as exc:  # noqa: BLE001 - escaped = uncaught
                failures += 1
                print(f"  {name:<26} UNCAUGHT  [escaped: "
                      f"{type(exc).__name__}: {exc}]")
                continue
            trail = fast_backend.fallback_trail()
            identical = (stats.to_dict(), exec_stats.to_dict()) == want
            if not trail:
                failures += 1
                print(f"  {name:<26} UNCAUGHT  [no fallback recorded]")
            elif not identical:
                failures += 1
                print(f"  {name:<26} UNCAUGHT  [payload diverged after "
                      f"fallback]")
            else:
                rec = trail[-1]
                print(f"  {name:<26} caught    [{rec.stage}-stage "
                      f"fallback, byte-identical]")
    return failures


def main(argv: list[str] | None = None) -> int:
    """Run the taxonomy; exit 0 iff every fault class was caught."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=0.1,
                    help="workload scale factor (default 0.1)")
    ap.add_argument("--benchmarks", default="compress,espresso",
                    help="comma-separated benchmark names (default small "
                         "pair); 'all' for the full suite")
    ap.add_argument("--fuzz", action="store_true",
                    help="only run the qa catch/shrink/triage pipeline "
                         "against injected miscompiles")
    ap.add_argument("--fuzz-seed", type=int, default=0,
                    help="base program seed for --fuzz (default 0)")
    ap.add_argument("--fastsim", action="store_true",
                    help="only sweep the fast-backend fault classes "
                         "(containment + byte-identical fallback)")
    args = ap.parse_args(argv)

    if args.fuzz:
        return 1 if check_fuzz_pipeline(args.fuzz_seed) else 0

    programs = benchmark_programs(args.scale)
    if args.benchmarks != "all":
        wanted = args.benchmarks.split(",")
        unknown = [k for k in wanted if k not in programs]
        if unknown:
            ap.error(f"unknown benchmark(s): {', '.join(unknown)} "
                     f"(available: {', '.join(sorted(programs))})")
        programs = {k: programs[k] for k in wanted}

    if args.fastsim:
        failures = check_fastsim_faults(programs)
        total = len(programs) * 3
        print(f"\n{total - failures}/{total} fastsim fault injections "
              f"caught" + ("" if not failures
                           else f" — {failures} UNCAUGHT"))
        return 1 if failures else 0

    uncaught = 0
    total = 0
    for bench, prog in programs.items():
        counts = _counts(prog)
        rows: list[tuple[str, bool, str]] = []
        for name in PROGRAM_FAULTS:
            rows.append((name, *check_program_fault(name, prog, counts)))
        for name in PROFILE_FAULTS:
            rows.append((name, *check_profile_fault(name, prog)))
        for name in PASS_FAULTS:
            rows.append((name, *check_pass_fault(name, prog)))
        print(f"{bench} (scale {args.scale}):")
        for name, caught, layer in rows:
            total += 1
            uncaught += not caught
            print(f"  {name:<26} {'caught' if caught else 'UNCAUGHT':<9} "
                  f"[{layer}]")
    print(f"\n{total - uncaught}/{total} fault injections caught"
          + ("" if not uncaught else f" — {uncaught} UNCAUGHT"))
    return 1 if uncaught else 0


if __name__ == "__main__":
    raise SystemExit(main())
