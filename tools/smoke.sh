#!/bin/sh
# Pre-merge smoke check (documented in docs/ROBUSTNESS.md):
#   1. the tier-1 test suite;
#   2. IR verification + differential equivalence of the baseline and
#      proposed compiles of two benchmarks at small scale;
#   3. the fault-injection harness (every fault class must be caught).
#
# Run from the repository root:  sh tools/smoke.sh
set -e
cd "$(dirname "$0")/.."

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== verify: compress + grep (scale 0.1) =="
python -m repro verify compress --scale 0.1
python -m repro verify grep --scale 0.1

echo "== fault injection =="
python tools/inject_faults.py --scale 0.1

echo "smoke: all green"
