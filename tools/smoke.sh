#!/bin/sh
# Pre-merge smoke check (documented in docs/ROBUSTNESS.md):
#   1. the tier-1 test suite;
#   2. IR verification + differential equivalence of the baseline and
#      proposed compiles of two benchmarks at small scale;
#   3. the fault-injection harness (every fault class must be caught);
#   4. the evaluation engine: cold vs warm cache runs must produce
#      identical tables with a nonzero warm hit rate, and a parallel
#      (--jobs 2) run must match the serial tables byte for byte.
#
# Run from the repository root:  sh tools/smoke.sh
set -e
cd "$(dirname "$0")/.."

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== verify: compress + grep (scale 0.1) =="
python -m repro verify compress --scale 0.1
python -m repro verify grep --scale 0.1

echo "== fault injection =="
python tools/inject_faults.py --scale 0.1

echo "== engine: cold/warm cache + parallel (scale 0.05) =="
SMOKE_TMP=$(mktemp -d)
trap 'rm -rf "$SMOKE_TMP"' EXIT
export REPRO_CACHE_DIR="$SMOKE_TMP/cache"

python -m repro tables --scale 0.05 \
    >"$SMOKE_TMP/cold.txt" 2>"$SMOKE_TMP/cold.err"
python -m repro tables --scale 0.05 \
    >"$SMOKE_TMP/warm.txt" 2>"$SMOKE_TMP/warm.err"
diff "$SMOKE_TMP/cold.txt" "$SMOKE_TMP/warm.txt" \
    || { echo "smoke: FAIL (warm tables differ from cold)"; exit 1; }
grep -q "cache: hits=[1-9]" "$SMOKE_TMP/warm.err" \
    || { echo "smoke: FAIL (warm run had no cache hits)"; \
         cat "$SMOKE_TMP/warm.err"; exit 1; }
python -m repro tables --scale 0.05 --jobs 2 --no-cache \
    >"$SMOKE_TMP/par.txt" 2>/dev/null
diff "$SMOKE_TMP/cold.txt" "$SMOKE_TMP/par.txt" \
    || { echo "smoke: FAIL (--jobs 2 tables differ from serial)"; exit 1; }

echo "smoke: all green"
